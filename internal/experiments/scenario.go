// Package experiments contains the drivers that regenerate every table and
// figure of the paper's evaluation: Fig. 5 (disk service-time fitting),
// Figs. 6-7 (predicted vs observed percentiles for scenarios S1 and S16),
// Table I (error summary of the full model) and Table II (model
// comparison), plus the ablation studies called out in DESIGN.md.
package experiments

import (
	"context"
	"fmt"
	"math"

	"cosmodel/internal/core"
	"cosmodel/internal/dist"
	"cosmodel/internal/parallel"
	"cosmodel/internal/simstore"
	"cosmodel/internal/trace"
)

// ScenarioConfig parameterizes a Fig. 6/7-style experiment: a simulated
// cluster swept over arrival rates, with the analytic models predicting
// each step's percentile of requests meeting each SLA.
type ScenarioConfig struct {
	// Name labels the scenario ("S1", "S16").
	Name string
	// Sim is the cluster configuration (ProcsPerDisk distinguishes the
	// paper's S1 and S16).
	Sim simstore.Config
	// CatalogObjects is the synthetic catalog size.
	CatalogObjects int
	// Sizes is the object-size distribution; nil selects the default
	// trace.WikipediaLikeSizes (Pareto alternatives stress the tail).
	Sizes dist.Distribution
	// ZipfS is the popularity skew.
	ZipfS float64
	// WarmRate and WarmDur configure the warmup phase (replacing the
	// paper's 3-hour warmup; caches are additionally pre-warmed
	// synthetically).
	WarmRate, WarmDur float64
	// RateStart, RateEnd, RateStep sweep the benchmarking phase.
	RateStart, RateEnd, RateStep float64
	// StepDur is the simulated duration of each rate step; the first
	// StepDiscard seconds of each step are excluded from measurement.
	StepDur, StepDiscard float64
	// CalibrationOps is the number of per-class disk benchmark operations
	// used to fit the device properties.
	CalibrationOps int
	// Seed drives all randomness.
	Seed int64
}

// DefaultS1 mirrors the paper's scenario S1: one process per storage
// device, rates 10→350 step 5. The durations are scaled down from the
// paper's 5-minute steps to keep a full sweep tractable; shape is
// preserved.
func DefaultS1() ScenarioConfig {
	cfg := simstore.DefaultConfig()
	cfg.ProcsPerDisk = 1
	// The paper's testbed times out and retries slow requests; its
	// analysis covers only windows with neither. 2 s is far above any
	// normal-status latency here.
	cfg.RequestTimeout = 2.0
	cfg.MaxRetries = 1
	return ScenarioConfig{
		Name:           "S1",
		Sim:            cfg,
		CatalogObjects: 150000,
		ZipfS:          1.05,
		WarmRate:       150,
		WarmDur:        60,
		RateStart:      10,
		RateEnd:        350,
		RateStep:       5,
		StepDur:        20,
		StepDiscard:    5,
		CalibrationOps: 3000,
		Seed:           1,
	}
}

// DefaultS16 mirrors scenario S16: 16 processes per device, rates 10→600.
func DefaultS16() ScenarioConfig {
	sc := DefaultS1()
	sc.Name = "S16"
	sc.Sim.ProcsPerDisk = 16
	sc.RateEnd = 600
	sc.Seed = 2
	return sc
}

// StepResult is one rate step of a scenario: the observed percentile of
// requests meeting each SLA, and the three models' predictions.
type StepResult struct {
	Rate      float64
	Responses uint64
	// Observed[i] is the measured fraction meeting Sim.SLAs[i] at the
	// frontend tier; ObservedBE is the backend-tier measurement.
	Observed   []float64
	ObservedBE []float64
	// Our, ODOPR and NoWTA are the per-SLA predictions; NaN when the
	// model declared the step overloaded. OurBE is the full model's
	// backend-tier prediction.
	Our, ODOPR, NoWTA []float64
	OurBE             []float64
	// Skipped marks steps the analysis excludes (overload — the paper
	// stops analyzing once timeouts/retries dominate).
	Skipped bool
	Reason  string
	// MaxDiskUtilization is the highest per-device disk utilization in
	// the window (diagnostic).
	MaxDiskUtilization float64
}

// ScenarioResult is a full sweep.
type ScenarioResult struct {
	Config ScenarioConfig
	SLAs   []float64
	Steps  []StepResult
	// Props are the calibrated device properties used by the models.
	Props core.DeviceProperties
}

// SweepData is the raw outcome of driving the simulator through a rate
// sweep: the measurement window of every step plus the calibrated device
// properties. The figure, table and ablation drivers all evaluate models
// against the same sweep.
type SweepData struct {
	Rates   []float64
	Windows []simstore.Window
	Props   core.DeviceProperties
}

// RunSweep calibrates device properties offline, builds and warms the
// cluster, and drives the rate sweep, capturing one measurement window per
// step.
func RunSweep(sc ScenarioConfig) (*SweepData, error) {
	if err := sc.Sim.Validate(); err != nil {
		return nil, err
	}
	if sc.RateStep <= 0 || sc.RateStart > sc.RateEnd || sc.StepDur <= sc.StepDiscard {
		return nil, fmt.Errorf("experiments: bad sweep configuration %+v", sc)
	}
	props, err := Calibrate(sc.Sim, sc.CalibrationOps, sc.Seed)
	if err != nil {
		return nil, err
	}
	sizes := sc.Sizes
	if sizes == nil {
		sizes = trace.WikipediaLikeSizes()
	}
	catalog, err := trace.NewCatalog(sc.CatalogObjects, sizes, sc.ZipfS, 1, sc.Seed+10)
	if err != nil {
		return nil, err
	}
	cluster, err := simstore.New(sc.Sim)
	if err != nil {
		return nil, err
	}
	if err := cluster.PrewarmCaches(catalog, 0.95); err != nil {
		return nil, err
	}
	data := &SweepData{Props: props}

	now := 0.0
	runPhase := func(rate, dur float64, seed int64) error {
		recs, err := trace.Generate(catalog, trace.Schedule{{Rate: rate, Duration: dur, Label: "phase"}}, seed)
		if err != nil {
			return err
		}
		for i := range recs {
			recs[i].At += now
		}
		cluster.Inject(recs)
		now += dur
		return nil
	}

	if sc.WarmDur > 0 {
		if err := runPhase(sc.WarmRate, sc.WarmDur, sc.Seed+100); err != nil {
			return nil, err
		}
		cluster.RunUntil(now)
	}

	step := 0
	for rate := sc.RateStart; rate <= sc.RateEnd+1e-9; rate += sc.RateStep {
		step++
		if err := runPhase(rate, sc.StepDur, sc.Seed+200+int64(step)); err != nil {
			return nil, err
		}
		cluster.RunUntil(now - sc.StepDur + sc.StepDiscard)
		before := cluster.Snapshot()
		cluster.RunUntil(now)
		after := cluster.Snapshot()
		data.Rates = append(data.Rates, rate)
		data.Windows = append(data.Windows, cluster.Window(before, after))
	}
	return data, nil
}

// RunScenario executes the sweep and evaluates the paper's three models
// (ours, ODOPR, noWTA) on every step's online metrics.
func RunScenario(sc ScenarioConfig) (*ScenarioResult, error) {
	data, err := RunSweep(sc)
	if err != nil {
		return nil, err
	}
	return EvaluateSweep(sc, data), nil
}

// EvaluateSweep runs the paper's three model variants over every measurement
// window of a captured sweep. Rate steps are independent, so they are fanned
// across the worker pool; each StepResult is written at its own step index,
// so the output is deterministic and identical to a sequential evaluation.
//
// The optional overlay pins evaluation machinery on every variant: a non-nil
// overlay Inverter replaces the default, and a nonzero overlay Workers sets
// the parallelism budget (Workers == 1 forces the entire evaluation — step
// fan-out included — sequential; benchmarks and equivalence tests use this).
func EvaluateSweep(sc ScenarioConfig, data *SweepData, overlay ...core.Options) *ScenarioResult {
	res, _ := EvaluateSweepContext(context.Background(), sc, data, overlay...)
	return res
}

// EvaluateSweepContext is the cancellable sweep evaluation: ctx (and the
// overlay's EvalTimeout, if set) is observed between rate steps and inside
// each step's guarded model evaluations, so a sweep over hundreds of
// operating points can be abandoned mid-flight. A panic in a pooled step is
// captured by the pool and returned as an error. Numerical failures inside
// one step do not abort the sweep — the step is marked Skipped with the
// failure as its Reason, mirroring how overloaded steps are excluded — so
// a partially poisoned sweep still yields every healthy step. On error the
// partially filled result is returned alongside it.
func EvaluateSweepContext(ctx context.Context, sc ScenarioConfig, data *SweepData, overlay ...core.Options) (*ScenarioResult, error) {
	var base core.Options
	if len(overlay) > 0 {
		base = overlay[0]
	}
	ctx, cancel := base.EvalContext(ctx)
	defer cancel()
	res := &ScenarioResult{Config: sc, SLAs: append([]float64(nil), sc.Sim.SLAs...), Props: data.Props}
	res.Steps = make([]StepResult, len(data.Windows))
	err := stepPool(base).ForEachContext(ctx, len(data.Windows), func(i int) error {
		st, err := evaluateStep(ctx, sc, data.Props, data.Windows[i], data.Rates[i], base)
		if err != nil {
			return err
		}
		res.Steps[i] = st
		return nil
	})
	return res, err
}

// stepPool picks the pool for a sweep-level fan-out from the overlay's
// worker budget: the shared default pool unless the overlay asks for a
// specific size (or for sequential evaluation).
func stepPool(base core.Options) *parallel.Pool {
	if base.Workers != 0 {
		return parallel.New(base.Workers)
	}
	return parallel.Default()
}

// overlayOptions applies the sweep-level evaluation overrides onto one model
// variant's options.
func overlayOptions(v, base core.Options) core.Options {
	if base.Inverter != nil {
		v.Inverter = base.Inverter
	}
	if base.Workers != 0 {
		v.Workers = base.Workers
	}
	return v
}

// evaluateStep turns one measurement window into a StepResult by running
// the three models on the window's online metrics. Context errors abort the
// step (and with it the sweep); model-level failures — overload, numerical
// poisoning — only skip the step.
func evaluateStep(ctx context.Context, sc ScenarioConfig, props core.DeviceProperties, win simstore.Window, rate float64, base core.Options) (StepResult, error) {
	nSLA := len(sc.Sim.SLAs)
	st := StepResult{
		Rate:       rate,
		Responses:  win.Responses,
		Observed:   append([]float64(nil), win.MeetFraction...),
		ObservedBE: append([]float64(nil), win.BEMeetFraction...),
		Our:        nanSlice(nSLA),
		ODOPR:      nanSlice(nSLA),
		NoWTA:      nanSlice(nSLA),
		OurBE:      nanSlice(nSLA),
	}
	for _, u := range win.DiskUtilization {
		if u > st.MaxDiskUtilization {
			st.MaxDiskUtilization = u
		}
	}
	if win.Responses == 0 {
		st.Skipped = true
		st.Reason = "no responses in window"
		return st, nil
	}
	// The paper analyzes prediction results only "when there is no
	// timeout and retry" (Section V-A); a saturated disk is the same
	// exclusion when timeouts are disabled.
	if win.Timeouts > 0 || win.Retries > 0 {
		st.Skipped = true
		st.Reason = fmt.Sprintf("overload: %d timeouts, %d retries in window", win.Timeouts, win.Retries)
		return st, nil
	}
	if st.MaxDiskUtilization >= 0.98 {
		st.Skipped = true
		st.Reason = fmt.Sprintf("overload: disk utilization %.2f", st.MaxDiskUtilization)
		return st, nil
	}
	// The full model's frontend view, backend view and noWTA ablation share
	// one model build and one batched traversal of the device mixture
	// (core.CDFBatchKindsContext); the batched noWTA view equals a model
	// built with WTA == WTANone exactly. Only ODOPR — a genuinely different
	// device pipeline — needs its own build.
	if sys, err := BuildSystemModel(sc.Sim, props, win, overlayOptions(core.Options{}, base)); err != nil {
		st.Skipped = true
		st.Reason = err.Error()
	} else {
		kinds := []core.BatchKind{core.BatchFrontend, core.BatchBackend, core.BatchNoWTA}
		grids, err := sys.CDFBatchKindsContext(ctx, kinds, sc.Sim.SLAs)
		if err != nil {
			if ctx.Err() != nil {
				return st, ctx.Err()
			}
			// Numerical poisoning: exclude the step like an overloaded one
			// instead of recording garbage.
			st.Skipped = true
			st.Reason = err.Error()
		} else {
			copy(st.Our, grids[0])
			copy(st.OurBE, grids[1])
			copy(st.NoWTA, grids[2])
		}
	}
	if sys, err := BuildSystemModel(sc.Sim, props, win, overlayOptions(core.Options{ODOPR: true}, base)); err != nil {
		st.Skipped = true
		st.Reason = err.Error()
	} else {
		ps, err := sys.CDFBatchContext(ctx, sc.Sim.SLAs)
		if err != nil {
			if ctx.Err() != nil {
				return st, ctx.Err()
			}
			st.Skipped = true
			st.Reason = err.Error()
		} else {
			copy(st.ODOPR, ps)
		}
	}
	return st, nil
}

// QuantileSweep returns the full model's p-quantile at every rate step of a
// captured sweep; see QuantileSweepContext.
func QuantileSweep(sc ScenarioConfig, data *SweepData, p float64, overlay ...core.Options) []float64 {
	out, _ := QuantileSweepContext(context.Background(), sc, data, p, overlay...)
	return out
}

// QuantileSweepContext evaluates the full model's p-quantile over every
// measurement window, sequentially in rate order, warm-starting each step's
// bracketed root search from the previous step's quantile
// (core.SystemModel.QuantileSeededContext): adjacent operating points have
// nearby quantiles, so each step refines an inherited bracket in a few
// probes instead of growing a fresh one from the mean. Steps whose model
// cannot be built or whose search fails record NaN, mirroring how
// EvaluateSweep skips them; a context error aborts the sweep, returning the
// partially filled result alongside it.
func QuantileSweepContext(ctx context.Context, sc ScenarioConfig, data *SweepData, p float64, overlay ...core.Options) ([]float64, error) {
	var base core.Options
	if len(overlay) > 0 {
		base = overlay[0]
	}
	ctx, cancel := base.EvalContext(ctx)
	defer cancel()
	out := nanSlice(len(data.Windows))
	seed := 0.0
	for i, win := range data.Windows {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		sys, err := BuildSystemModel(sc.Sim, data.Props, win, overlayOptions(core.Options{}, base))
		if err != nil {
			continue // overloaded or empty window: no quantile, like a skipped step
		}
		q, err := sys.QuantileSeededContext(ctx, p, seed)
		if err != nil {
			if ctx.Err() != nil {
				return out, ctx.Err()
			}
			continue
		}
		out[i] = q
		if q > 0 && !math.IsInf(q, 1) {
			seed = q
		}
	}
	return out, nil
}

// BuildSystemModel glues a measurement window to the analytic model: each
// device's online metrics come straight from the window, and the frontend
// model uses the tier-wide totals. Windows carrying PUT replica traffic
// feed each device's write rate and mean chunks-per-write into the shared
// queue (and the frontend sees the PUT arrivals too); read-only windows
// build the exact read pipeline of the paper.
func BuildSystemModel(cfg simstore.Config, props core.DeviceProperties, win simstore.Window, opts core.Options) (*core.SystemModel, error) {
	var devs []*core.DeviceModel
	for d := range win.DeviceRate {
		r := win.DeviceRate[d]
		if r <= 0 {
			continue // idle device contributes nothing to the mixture
		}
		m := core.OnlineMetrics{
			Rate:      r,
			DataRate:  math.Max(win.DeviceChunkRate[d], r),
			MissIndex: win.MissIndex[d],
			MissMeta:  win.MissMeta[d],
			MissData:  win.MissData[d],
			Procs:     cfg.ProcsPerDisk,
			DiskMean:  win.DiskMeanSvc[d],
		}
		if d < len(win.DeviceWriteRate) && win.DeviceWriteRate[d] > 0 {
			m.WriteRate = win.DeviceWriteRate[d]
			m.WriteChunks = 1
			if d < len(win.DeviceWriteChunkRate) {
				m.WriteChunks = math.Max(win.DeviceWriteChunkRate[d]/m.WriteRate, 1)
			}
		}
		dm, err := core.NewDeviceModel(props, m, opts)
		if err != nil {
			return nil, fmt.Errorf("device %d: %w", d, err)
		}
		devs = append(devs, dm)
	}
	if len(devs) == 0 {
		return nil, fmt.Errorf("%w: no active devices in window", core.ErrBadParams)
	}
	// The frontend serves both GET and PUT arrivals; win.WriteRate is the
	// client-visible (quorum-acknowledged) PUT rate, not the replica
	// fan-out.
	fe, err := core.NewFrontendModel(win.TotalRate()+win.WriteRate, cfg.Frontends*cfg.ProcsPerFrontend, props.ParseFE)
	if err != nil {
		return nil, err
	}
	return core.NewSystemModel(fe, devs, opts)
}

// Calibrate performs the paper's Section IV-A device benchmarking on the
// simulated hardware: disk service times measured with one outstanding
// operation and fitted with Gamma distributions, parse latencies measured
// with a cached closed loop.
func Calibrate(cfg simstore.Config, ops int, seed int64) (core.DeviceProperties, error) {
	samples, err := simstore.MeasureDiskService(cfg, ops, seed)
	if err != nil {
		return core.DeviceProperties{}, err
	}
	parse, err := simstore.MeasureParse(cfg, 20, seed+1)
	if err != nil {
		return core.DeviceProperties{}, err
	}
	return core.FitDeviceProperties(samples.Index, samples.Meta, samples.Data, parse.FE, parse.BE)
}

func nanSlice(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = math.NaN()
	}
	return out
}
