package experiments

import (
	"fmt"
	"io"
	"math"

	"cosmodel/internal/benchkit"
	"cosmodel/internal/stats"
)

// RunFig6 reproduces Fig. 6: scenario S1 (one process per device),
// prediction curves for every SLA across the rate sweep.
func RunFig6() (*ScenarioResult, error) { return RunScenario(DefaultS1()) }

// RunFig7 reproduces Fig. 7: scenario S16 (sixteen processes per device).
func RunFig7() (*ScenarioResult, error) { return RunScenario(DefaultS16()) }

// SLASeries extracts, for SLA index i, the per-step series — one subfigure
// of Fig. 6/Fig. 7. Columns: rate, the observed fraction with its 95%
// Wilson interval, the three frontend-tier model predictions, our model's
// signed error, and the backend-tier observed/predicted pair.
func (r *ScenarioResult) SLASeries(i int) (*benchkit.Series, error) {
	if i < 0 || i >= len(r.SLAs) {
		return nil, fmt.Errorf("experiments: SLA index %d out of range", i)
	}
	s := benchkit.NewSeries("rate", "observed", "obs_ci_lo", "obs_ci_hi",
		"our_model", "odopr_model", "nowta_model", "err_our",
		"observed_be", "our_model_be")
	for _, st := range r.Steps {
		if st.Skipped {
			continue
		}
		k := uint64(st.Observed[i]*float64(st.Responses) + 0.5)
		lo, hi := stats.WilsonInterval(k, st.Responses, 0.95)
		if err := s.AddRow(st.Rate, st.Observed[i], lo, hi,
			st.Our[i], st.ODOPR[i], st.NoWTA[i],
			st.Our[i]-st.Observed[i],
			st.ObservedBE[i], st.OurBE[i]); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Errors collects |prediction - observed| for one SLA and one model
// ("our", "odopr", "nowta") over the analyzed (non-skipped) steps.
func (r *ScenarioResult) Errors(i int, model string) []float64 {
	var out []float64
	for _, st := range r.Steps {
		if st.Skipped {
			continue
		}
		var pred float64
		switch model {
		case "our":
			pred = st.Our[i]
		case "odopr":
			pred = st.ODOPR[i]
		case "nowta":
			pred = st.NoWTA[i]
		default:
			return nil
		}
		if math.IsNaN(pred) {
			continue
		}
		out = append(out, math.Abs(pred-st.Observed[i]))
	}
	return out
}

// ErrorSummary summarizes one SLA × model cell (Table I / Table II entry).
func (r *ScenarioResult) ErrorSummary(i int, model string) benchkit.ErrorSummary {
	errs := r.Errors(i, model)
	zeros := make([]float64, len(errs))
	return benchkit.SummarizeAbsErrors(errs, zeros)
}

// AnalyzedSteps returns the number of non-skipped steps.
func (r *ScenarioResult) AnalyzedSteps() int {
	n := 0
	for _, st := range r.Steps {
		if !st.Skipped {
			n++
		}
	}
	return n
}

// Render writes the full per-SLA prediction curves plus a short error recap.
func (r *ScenarioResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "Scenario %s (%d processes per device), %d analyzed steps of %d\n",
		r.Config.Name, r.Config.Sim.ProcsPerDisk, r.AnalyzedSteps(), len(r.Steps))
	for i, sla := range r.SLAs {
		fmt.Fprintf(w, "\nSLA %.0fms: percentile of requests meeting the SLA vs arrival rate\n", sla*1e3)
		s, err := r.SLASeries(i)
		if err != nil {
			return err
		}
		if s.Len() > 1 {
			plot := benchkit.NewSeries("rate", "observed", "our", "odopr", "nowta")
			for row := 0; row < s.Len(); row++ {
				if err := plot.AddRow(s.Columns[0][row], s.Columns[1][row],
					s.Columns[4][row], s.Columns[5][row], s.Columns[6][row]); err != nil {
					return err
				}
			}
			if err := (benchkit.AsciiPlot{Width: 69, Height: 14, YMin: 0, YMax: 1}).Render(w, plot); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
		if err := s.WriteCSV(w); err != nil {
			return err
		}
		sum := r.ErrorSummary(i, "our")
		fmt.Fprintf(w, "our model abs error: mean %.2f%%, best %.2f%%, worst %.2f%%\n",
			sum.Mean*100, sum.Best*100, sum.Worst*100)
	}
	return nil
}

// RenderTable1 reproduces Table I: best/worst/mean absolute prediction
// error of the full model per scenario × SLA.
func RenderTable1(w io.Writer, results []*ScenarioResult) error {
	fmt.Fprintln(w, "Table I: summary of prediction errors for our model")
	tab := benchkit.NewTable("Scenario", "SLA", "Best Case", "Worst Case", "Mean")
	for _, r := range results {
		for i, sla := range r.SLAs {
			s := r.ErrorSummary(i, "our")
			tab.AddRow(r.Config.Name, fmt.Sprintf("%.0fms", sla*1e3),
				pct(s.Best), pct(s.Worst), pct(s.Mean))
		}
	}
	return tab.Render(w)
}

// RenderTable2 reproduces Table II: mean absolute prediction errors of the
// three models per scenario × SLA.
func RenderTable2(w io.Writer, results []*ScenarioResult) error {
	fmt.Fprintln(w, "Table II: mean prediction errors of different models")
	tab := benchkit.NewTable("Scenario", "SLA", "Our Model", "ODOPR Model", "noWTA Model")
	for _, r := range results {
		for i, sla := range r.SLAs {
			tab.AddRow(r.Config.Name, fmt.Sprintf("%.0fms", sla*1e3),
				pct(r.ErrorSummary(i, "our").Mean),
				pct(r.ErrorSummary(i, "odopr").Mean),
				pct(r.ErrorSummary(i, "nowta").Mean))
		}
	}
	return tab.Render(w)
}

func pct(v float64) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	return fmt.Sprintf("%.2f%%", v*100)
}
