package experiments

import (
	"fmt"
	"io"

	"cosmodel/internal/benchkit"
	"cosmodel/internal/simstore"
	"cosmodel/internal/trace"
)

// ArchComparisonConfig parameterizes the event-driven vs thread-per-
// connection comparison (the claim the paper cites from [22] to justify
// modeling the event-driven architecture: better throughput and tail
// latency under high concurrency).
type ArchComparisonConfig struct {
	Sim            simstore.Config // base; Architecture is overridden per run
	CatalogObjects int
	ZipfS          float64
	Rates          []float64
	StepDur        float64
	Discard        float64
	Seed           int64
}

// DefaultArchComparison compares the two architectures with matched
// concurrency resources (threads per disk = event-loop processes per
// disk = 1). The contrast is sharpest with scarce workers: the event loop
// interleaves network transmissions while a blocking thread holds its
// worker through them.
func DefaultArchComparison() ArchComparisonConfig {
	cfg := simstore.DefaultConfig()
	cfg.ProcsPerDisk = 1
	cfg.MaxThreadsPerDisk = 1
	return ArchComparisonConfig{
		Sim:            cfg,
		CatalogObjects: 100000,
		ZipfS:          1.05,
		Rates:          []float64{100, 200, 300, 400},
		StepDur:        25,
		Discard:        5,
		Seed:           3,
	}
}

// ArchPoint is one (architecture, rate) measurement.
type ArchPoint struct {
	Rate         float64
	MeanLatency  float64
	P99, P999    float64
	MeetFraction []float64 // per SLA
	Responses    uint64
}

// ArchComparisonResult holds both sweeps.
type ArchComparisonResult struct {
	SLAs        []float64
	EventDriven []ArchPoint
	ThreadPer   []ArchPoint
}

// RunArchComparison drives the same workload through both architectures.
func RunArchComparison(cfg ArchComparisonConfig) (*ArchComparisonResult, error) {
	if len(cfg.Rates) == 0 || cfg.StepDur <= cfg.Discard {
		return nil, fmt.Errorf("experiments: bad architecture comparison config")
	}
	res := &ArchComparisonResult{SLAs: append([]float64(nil), cfg.Sim.SLAs...)}
	for _, arch := range []simstore.Architecture{simstore.EventDriven, simstore.ThreadPerConnection} {
		points, err := runArchSweep(cfg, arch)
		if err != nil {
			return nil, err
		}
		if arch == simstore.EventDriven {
			res.EventDriven = points
		} else {
			res.ThreadPer = points
		}
	}
	return res, nil
}

func runArchSweep(cfg ArchComparisonConfig, arch simstore.Architecture) ([]ArchPoint, error) {
	sim := cfg.Sim
	sim.Architecture = arch
	catalog, err := trace.NewCatalog(cfg.CatalogObjects, trace.WikipediaLikeSizes(), cfg.ZipfS, 1, cfg.Seed)
	if err != nil {
		return nil, err
	}
	cluster, err := simstore.New(sim)
	if err != nil {
		return nil, err
	}
	if err := cluster.PrewarmCaches(catalog, 0.95); err != nil {
		return nil, err
	}
	var points []ArchPoint
	now := 0.0
	for i, rate := range cfg.Rates {
		recs, err := trace.Generate(catalog, trace.Schedule{{Rate: rate, Duration: cfg.StepDur, Label: "step"}}, cfg.Seed+int64(i)+1)
		if err != nil {
			return nil, err
		}
		for j := range recs {
			recs[j].At += now
		}
		cluster.Inject(recs)
		now += cfg.StepDur
		cluster.RunUntil(now - cfg.StepDur + cfg.Discard)
		before := cluster.Snapshot()
		cluster.RunUntil(now)
		win := cluster.Window(before, cluster.Snapshot())
		pt := ArchPoint{
			Rate:         rate,
			MeanLatency:  win.MeanLatency,
			MeetFraction: append([]float64(nil), win.MeetFraction...),
			Responses:    win.Responses,
		}
		if win.Latency != nil {
			pt.P99 = win.Latency.Quantile(0.99)
			pt.P999 = win.Latency.Quantile(0.999)
		}
		points = append(points, pt)
	}
	return points, nil
}

// Render writes the comparison table.
func (r *ArchComparisonResult) Render(w io.Writer) error {
	fmt.Fprintln(w, "Architecture comparison: event-driven vs thread-per-connection (matched concurrency)")
	tab := benchkit.NewTable("rate", "arch", "mean ms", "p99 ms", "p99.9 ms", "P(<=50ms)")
	slaIdx := 0
	for i, sla := range r.SLAs {
		if sla == 0.050 {
			slaIdx = i
		}
	}
	for i := range r.EventDriven {
		ed, tp := r.EventDriven[i], r.ThreadPer[i]
		tab.AddRow(ed.Rate, "event-driven", ed.MeanLatency*1e3, ed.P99*1e3, ed.P999*1e3, ed.MeetFraction[slaIdx])
		tab.AddRow(tp.Rate, "thread-per-conn", tp.MeanLatency*1e3, tp.P99*1e3, tp.P999*1e3, tp.MeetFraction[slaIdx])
	}
	return tab.Render(w)
}
