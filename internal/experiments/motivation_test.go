package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestMeanVsPercentile(t *testing.T) {
	res, err := RunMeanVsPercentile(DefaultMeanVsPercentile())
	if err != nil {
		t.Fatal(err)
	}
	// The means are matched by construction.
	if rel := math.Abs(res.MeanLow-res.MeanHigh) / res.MeanLow; rel > 0.02 {
		t.Fatalf("means not matched: %v vs %v", res.MeanLow, res.MeanHigh)
	}
	// Yet the percentiles differ substantially somewhere — the paper's
	// point that means hide tail behaviour.
	maxGap := 0.0
	for i := range res.SLAs {
		gap := math.Abs(res.PercLow[i] - res.PercHigh[i])
		if gap > maxGap {
			maxGap = gap
		}
		for _, p := range []float64{res.PercLow[i], res.PercHigh[i]} {
			if p < 0 || p > 1 {
				t.Fatalf("percentile %v out of range", p)
			}
		}
	}
	if maxGap < 0.05 {
		t.Errorf("max percentile gap %.3f — equal means did not hide tail differences", maxGap)
	}
	// The high-variability deployment sustains less load at equal mean.
	if !(res.RateHigh < res.RateLow) {
		t.Errorf("high-variability rate %v should be below %v", res.RateHigh, res.RateLow)
	}
	var b strings.Builder
	if err := res.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "percentiles, not means") {
		t.Error("render missing header")
	}
}

func TestMeanVsPercentileValidation(t *testing.T) {
	bad := DefaultMeanVsPercentile()
	bad.BaseRate = 0
	if _, err := RunMeanVsPercentile(bad); err == nil {
		t.Error("zero rate should fail")
	}
	bad = DefaultMeanVsPercentile()
	bad.HighSCV = bad.LowSCV
	if _, err := RunMeanVsPercentile(bad); err == nil {
		t.Error("equal SCVs should fail")
	}
}
