package experiments

import (
	"fmt"
	"io"
	"math"

	"cosmodel/internal/benchkit"
	"cosmodel/internal/core"
	"cosmodel/internal/dist"
	"cosmodel/internal/simstore"
	"cosmodel/internal/trace"
)

// WriteSensitivityConfig parameterizes the read-heavy-assumption test: the
// model (which ignores WRITE/DELETE traffic, Section III-A) is evaluated
// against workloads with increasing PUT fractions.
type WriteSensitivityConfig struct {
	Sim            simstore.Config
	CatalogObjects int
	ZipfS          float64
	Rate           float64
	WriteFractions []float64
	StepDur        float64
	Discard        float64
	CalibrationOps int
	Seed           int64
}

// DefaultWriteSensitivity sweeps write fractions from the paper's
// production regimes (<1-5%) past the point where the assumption breaks.
func DefaultWriteSensitivity() WriteSensitivityConfig {
	return WriteSensitivityConfig{
		Sim:            simstore.DefaultConfig(),
		CatalogObjects: 100000,
		ZipfS:          1.05,
		Rate:           240,
		WriteFractions: []float64{0, 0.01, 0.05, 0.10, 0.20, 0.40},
		StepDur:        25,
		Discard:        5,
		CalibrationOps: 2000,
		Seed:           4,
	}
}

// WriteSensitivityPoint is one write-fraction measurement.
type WriteSensitivityPoint struct {
	WriteFraction float64
	// Observed and Predicted are per-SLA read percentiles.
	Observed  []float64
	Predicted []float64
	// MeanAbsErr averages |predicted-observed| over SLAs.
	MeanAbsErr float64
	// WriteRate is the measured acknowledged PUT rate.
	WriteRate float64
}

// WriteSensitivityResult is the sweep outcome.
type WriteSensitivityResult struct {
	SLAs   []float64
	Points []WriteSensitivityPoint
}

// RunWriteSensitivity measures how the model's read-latency predictions
// degrade as unmodeled write traffic consumes disk time.
func RunWriteSensitivity(cfg WriteSensitivityConfig) (*WriteSensitivityResult, error) {
	if len(cfg.WriteFractions) == 0 || cfg.StepDur <= cfg.Discard {
		return nil, fmt.Errorf("experiments: bad write sensitivity config")
	}
	props, err := Calibrate(cfg.Sim, cfg.CalibrationOps, cfg.Seed)
	if err != nil {
		return nil, err
	}
	res := &WriteSensitivityResult{SLAs: append([]float64(nil), cfg.Sim.SLAs...)}
	for i, wf := range cfg.WriteFractions {
		catalog, err := trace.NewCatalog(cfg.CatalogObjects, trace.WikipediaLikeSizes(), cfg.ZipfS, 1, cfg.Seed+10)
		if err != nil {
			return nil, err
		}
		cluster, err := simstore.New(cfg.Sim)
		if err != nil {
			return nil, err
		}
		if err := cluster.PrewarmCaches(catalog, 0.95); err != nil {
			return nil, err
		}
		recs, err := trace.GenerateMixed(catalog,
			trace.Schedule{{Rate: cfg.Rate, Duration: cfg.StepDur, Label: "run"}},
			wf, cfg.Seed+int64(i)+100)
		if err != nil {
			return nil, err
		}
		cluster.Inject(recs)
		cluster.RunUntil(cfg.Discard)
		before := cluster.Snapshot()
		cluster.Drain()
		win := cluster.Window(before, cluster.Snapshot())
		pt := WriteSensitivityPoint{
			WriteFraction: wf,
			Observed:      append([]float64(nil), win.MeetFraction...),
			Predicted:     nanSlice(len(res.SLAs)),
			WriteRate:     win.WriteRate,
		}
		sys, err := BuildSystemModel(cfg.Sim, props, win, core.Options{})
		if err == nil {
			total := 0.0
			for j, sla := range res.SLAs {
				pt.Predicted[j] = sys.PercentileMeetingSLA(sla)
				total += math.Abs(pt.Predicted[j] - pt.Observed[j])
			}
			pt.MeanAbsErr = total / float64(len(res.SLAs))
		} else {
			pt.MeanAbsErr = math.NaN()
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// Render writes the write-sensitivity table.
func (r *WriteSensitivityResult) Render(w io.Writer) error {
	fmt.Fprintln(w, "Read-heavy assumption: model error vs write fraction (model ignores PUTs)")
	header := []string{"write frac", "PUT rate"}
	for _, sla := range r.SLAs {
		header = append(header, fmt.Sprintf("obs@%.0fms", sla*1e3), fmt.Sprintf("pred@%.0fms", sla*1e3))
	}
	header = append(header, "mean abs err")
	tab := benchkit.NewTable(header...)
	for _, pt := range r.Points {
		row := []interface{}{fmt.Sprintf("%.2f", pt.WriteFraction), fmt.Sprintf("%.1f/s", pt.WriteRate)}
		for j := range r.SLAs {
			row = append(row, pt.Observed[j], pt.Predicted[j])
		}
		row = append(row, pct(pt.MeanAbsErr))
		tab.AddRow(row...)
	}
	return tab.Render(w)
}

// WorkloadIndependenceConfig parameterizes the calibration-portability
// test: the paper distinguishes itself from simulation-based models by
// benchmarking independently of the workload, so one calibration must
// serve under different popularity skews and object-size regimes.
type WorkloadIndependenceConfig struct {
	Sim            simstore.Config
	CatalogObjects int
	Rate           float64
	StepDur        float64
	Discard        float64
	CalibrationOps int
	Seed           int64
}

// DefaultWorkloadIndependence returns the standard configuration.
func DefaultWorkloadIndependence() WorkloadIndependenceConfig {
	return WorkloadIndependenceConfig{
		Sim:            simstore.DefaultConfig(),
		CatalogObjects: 100000,
		Rate:           200,
		StepDur:        25,
		Discard:        5,
		CalibrationOps: 2000,
		Seed:           6,
	}
}

// WorkloadPoint is one workload variant's outcome.
type WorkloadPoint struct {
	Name       string
	Observed   []float64
	Predicted  []float64
	MeanAbsErr float64
}

// WorkloadIndependenceResult is the outcome of the portability test.
type WorkloadIndependenceResult struct {
	SLAs   []float64
	Points []WorkloadPoint
}

// RunWorkloadIndependence calibrates device properties ONCE, then predicts
// under structurally different workloads (popularity skew, object sizes).
func RunWorkloadIndependence(cfg WorkloadIndependenceConfig) (*WorkloadIndependenceResult, error) {
	if cfg.StepDur <= cfg.Discard {
		return nil, fmt.Errorf("experiments: bad workload independence config")
	}
	props, err := Calibrate(cfg.Sim, cfg.CalibrationOps, cfg.Seed)
	if err != nil {
		return nil, err
	}
	variants := []struct {
		name         string
		zipfS        float64
		mean, median float64
	}{
		{"baseline (zipf 1.05, 32KB)", 1.05, 32 * 1024, 10 * 1024},
		{"flatter popularity (zipf 1.02)", 1.02, 32 * 1024, 10 * 1024},
		{"hotter popularity (zipf 1.3)", 1.3, 32 * 1024, 10 * 1024},
		{"small objects (8KB mean)", 1.05, 8 * 1024, 4 * 1024},
		{"large objects (128KB mean)", 1.05, 128 * 1024, 48 * 1024},
	}
	res := &WorkloadIndependenceResult{SLAs: append([]float64(nil), cfg.Sim.SLAs...)}
	for i, v := range variants {
		sizes := dist.NewLognormalMeanMedian(v.mean, v.median)
		catalog, err := trace.NewCatalog(cfg.CatalogObjects, sizes, v.zipfS, 1, cfg.Seed+int64(i)+20)
		if err != nil {
			return nil, err
		}
		cluster, err := simstore.New(cfg.Sim)
		if err != nil {
			return nil, err
		}
		if err := cluster.PrewarmCaches(catalog, 0.95); err != nil {
			return nil, err
		}
		recs, err := trace.Generate(catalog,
			trace.Schedule{{Rate: cfg.Rate, Duration: cfg.StepDur, Label: "run"}},
			cfg.Seed+int64(i)+200)
		if err != nil {
			return nil, err
		}
		cluster.Inject(recs)
		cluster.RunUntil(cfg.Discard)
		before := cluster.Snapshot()
		cluster.Drain()
		win := cluster.Window(before, cluster.Snapshot())
		pt := WorkloadPoint{
			Name:      v.name,
			Observed:  append([]float64(nil), win.MeetFraction...),
			Predicted: nanSlice(len(res.SLAs)),
		}
		sys, err := BuildSystemModel(cfg.Sim, props, win, core.Options{})
		if err == nil {
			total := 0.0
			for j, sla := range res.SLAs {
				pt.Predicted[j] = sys.PercentileMeetingSLA(sla)
				total += math.Abs(pt.Predicted[j] - pt.Observed[j])
			}
			pt.MeanAbsErr = total / float64(len(res.SLAs))
		} else {
			pt.MeanAbsErr = math.NaN()
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// Render writes the workload-independence table.
func (r *WorkloadIndependenceResult) Render(w io.Writer) error {
	fmt.Fprintln(w, "Workload-independent calibration: one benchmark, different workloads")
	header := []string{"workload"}
	for _, sla := range r.SLAs {
		header = append(header, fmt.Sprintf("obs@%.0fms", sla*1e3), fmt.Sprintf("pred@%.0fms", sla*1e3))
	}
	header = append(header, "mean abs err")
	tab := benchkit.NewTable(header...)
	for _, pt := range r.Points {
		row := []interface{}{pt.Name}
		for j := range r.SLAs {
			row = append(row, pt.Observed[j], pt.Predicted[j])
		}
		row = append(row, pct(pt.MeanAbsErr))
		tab.AddRow(row...)
	}
	return tab.Render(w)
}
