package experiments

import (
	"context"
	"math"
	"testing"

	"cosmodel/internal/core"
)

// TestQuantileSweepMatchesColdStarts pins the warm-start sweep against
// per-window cold-started quantile searches: seeding each step's bracket
// from the previous step must not change the root, only how fast it is
// found.
func TestQuantileSweepMatchesColdStarts(t *testing.T) {
	sc := smallS1()
	data, err := RunSweep(sc)
	if err != nil {
		t.Fatal(err)
	}
	const p = 0.95
	got := QuantileSweep(sc, data, p)
	if len(got) != len(data.Windows) {
		t.Fatalf("sweep returned %d quantiles for %d windows", len(got), len(data.Windows))
	}
	finite := 0
	for i, win := range data.Windows {
		sys, err := BuildSystemModel(sc.Sim, data.Props, win, core.Options{})
		if err != nil {
			if !math.IsNaN(got[i]) {
				t.Errorf("window %d: unbuildable model but sweep quantile %v, want NaN", i, got[i])
			}
			continue
		}
		cold, err := sys.QuantileContext(context.Background(), p)
		if err != nil {
			if !math.IsNaN(got[i]) {
				t.Errorf("window %d: failed search but sweep quantile %v, want NaN", i, got[i])
			}
			continue
		}
		finite++
		if d := math.Abs(got[i] - cold); d > 1e-9*(1+cold) {
			t.Errorf("window %d: warm-started quantile %v, cold %v (|Δ| = %g)", i, got[i], cold, d)
		}
	}
	if finite < 2 {
		t.Fatalf("only %d windows produced a quantile; fixture too degenerate", finite)
	}
}

// TestQuantileSweepCancellation pins the abort contract: a cancelled
// context returns the error alongside the partially filled (all-NaN here)
// result.
func TestQuantileSweepCancellation(t *testing.T) {
	sc := smallS1()
	data, err := RunSweep(sc)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := QuantileSweepContext(ctx, sc, data, 0.95)
	if err == nil {
		t.Fatal("cancelled sweep returned no error")
	}
	if len(out) != len(data.Windows) {
		t.Fatalf("cancelled sweep returned %d entries for %d windows", len(out), len(data.Windows))
	}
	for i, q := range out {
		if !math.IsNaN(q) {
			t.Errorf("window %d evaluated after cancellation: %v", i, q)
		}
	}
}
