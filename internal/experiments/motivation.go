package experiments

import (
	"fmt"
	"io"

	"cosmodel/internal/benchkit"
	"cosmodel/internal/core"
	"cosmodel/internal/dist"
)

// The paper's Section I argues that response-latency *percentiles* are the
// right SLA currency for object stores, not the averages that earlier
// analytic models predict. This experiment makes the argument quantitative:
// two deployments are tuned to the SAME mean response latency — one with
// low-variability disks, one with high-variability disks — and the model
// shows how far apart their SLA percentiles are. A mean-based planner
// would treat them as interchangeable.

// MeanVsPercentileConfig parameterizes the motivation experiment.
type MeanVsPercentileConfig struct {
	// BaseRate is the per-device request rate of the low-variability
	// deployment.
	BaseRate float64
	// LowSCV and HighSCV are the two disks' service-time variabilities.
	LowSCV, HighSCV float64
	// SLAs are the latency bounds to compare at.
	SLAs []float64
}

// DefaultMeanVsPercentile uses the testbed's service means with SCV 0.4 vs
// 4.0 (a healthy disk vs one with a bimodal remap-prone latency profile).
func DefaultMeanVsPercentile() MeanVsPercentileConfig {
	return MeanVsPercentileConfig{
		BaseRate: 45,
		LowSCV:   0.4,
		HighSCV:  4.0,
		SLAs:     []float64{0.010, 0.050, 0.100},
	}
}

// MeanVsPercentileResult reports the matched-mean comparison.
type MeanVsPercentileResult struct {
	SLAs []float64
	// MeanLow/MeanHigh are the (matched) mean response latencies.
	MeanLow, MeanHigh float64
	// RateHigh is the rate the high-variability deployment sustains at
	// the matched mean.
	RateLow, RateHigh float64
	// PercLow/PercHigh are the per-SLA percentiles.
	PercLow, PercHigh []float64
}

// RunMeanVsPercentile builds both deployments, tunes the high-variability
// one's rate until its mean response matches the low-variability one's
// (bisection), and compares percentiles.
func RunMeanVsPercentile(cfg MeanVsPercentileConfig) (*MeanVsPercentileResult, error) {
	if cfg.BaseRate <= 0 || cfg.LowSCV <= 0 || cfg.HighSCV <= cfg.LowSCV || len(cfg.SLAs) == 0 {
		return nil, fmt.Errorf("experiments: bad mean-vs-percentile config")
	}
	build := func(scv, rate float64) (*core.SystemModel, error) {
		idx, err := dist.FitPhaseType(9e-3, scv)
		if err != nil {
			return nil, err
		}
		meta, err := dist.FitPhaseType(6e-3, scv)
		if err != nil {
			return nil, err
		}
		data, err := dist.FitPhaseType(8e-3, scv)
		if err != nil {
			return nil, err
		}
		props := core.DeviceProperties{
			IndexDisk: idx,
			MetaDisk:  meta,
			DataDisk:  data,
			ParseBE:   dist.Degenerate{Value: 0.5e-3},
			ParseFE:   dist.Degenerate{Value: 0.3e-3},
		}
		m := core.OnlineMetrics{
			Rate: rate, DataRate: rate * 1.2,
			MissIndex: 0.35, MissMeta: 0.30, MissData: 0.45,
			Procs: 1,
		}
		dev, err := core.NewDeviceModel(props, m, core.Options{})
		if err != nil {
			return nil, err
		}
		fe, err := core.NewFrontendModel(rate*4, 12, props.ParseFE)
		if err != nil {
			return nil, err
		}
		return core.NewSystemModel(fe, []*core.DeviceModel{dev}, core.Options{})
	}
	low, err := build(cfg.LowSCV, cfg.BaseRate)
	if err != nil {
		return nil, err
	}
	target := low.MeanResponse()
	// Bisect the high-variability deployment's rate to match the mean.
	lo, hi := 0.5, cfg.BaseRate
	var high *core.SystemModel
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		sys, err := build(cfg.HighSCV, mid)
		if err != nil {
			// Overloaded: too fast.
			hi = mid
			continue
		}
		if sys.MeanResponse() < target {
			lo = mid
		} else {
			hi = mid
		}
		high = sys
	}
	if high == nil {
		return nil, fmt.Errorf("experiments: could not match means")
	}
	res := &MeanVsPercentileResult{
		SLAs:     append([]float64(nil), cfg.SLAs...),
		MeanLow:  low.MeanResponse(),
		MeanHigh: high.MeanResponse(),
		RateLow:  cfg.BaseRate,
		RateHigh: (lo + hi) / 2,
	}
	for _, sla := range cfg.SLAs {
		res.PercLow = append(res.PercLow, low.PercentileMeetingSLA(sla))
		res.PercHigh = append(res.PercHigh, high.PercentileMeetingSLA(sla))
	}
	return res, nil
}

// Render writes the comparison.
func (r *MeanVsPercentileResult) Render(w io.Writer) error {
	fmt.Fprintln(w, "Why percentiles, not means (paper §I): two deployments with equal mean latency")
	fmt.Fprintf(w, "low-variability disks:  rate %.1f req/s, mean %.2f ms\n", r.RateLow, r.MeanLow*1e3)
	fmt.Fprintf(w, "high-variability disks: rate %.1f req/s, mean %.2f ms\n\n", r.RateHigh, r.MeanHigh*1e3)
	tab := benchkit.NewTable("SLA", "P(meet) low-var", "P(meet) high-var", "gap")
	for i, sla := range r.SLAs {
		tab.AddRow(fmt.Sprintf("%.0fms", sla*1e3), r.PercLow[i], r.PercHigh[i],
			fmt.Sprintf("%.1f pts", (r.PercLow[i]-r.PercHigh[i])*100))
	}
	if err := tab.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nA mean-based model cannot distinguish these deployments; the percentile model can.")
	return nil
}
