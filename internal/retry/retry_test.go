package retry

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// newLocalServer starts a test HTTP server and returns its base URL.
func newLocalServer(t *testing.T, h http.Handler) string {
	t.Helper()
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv.URL
}

// fakeSleep records requested delays without waiting.
type fakeSleep struct {
	delays []time.Duration
}

func (f *fakeSleep) sleep(ctx context.Context, d time.Duration) error {
	f.delays = append(f.delays, d)
	return ctx.Err()
}

func testPolicy(fs *fakeSleep) Policy {
	p := DefaultPolicy()
	p.Jitter = 0
	p.Sleep = fs.sleep
	return p
}

func TestDoSucceedsFirstTry(t *testing.T) {
	fs := &fakeSleep{}
	calls := 0
	err := testPolicy(fs).Do(context.Background(), func(context.Context) error {
		calls++
		return nil
	})
	if err != nil || calls != 1 || len(fs.delays) != 0 {
		t.Fatalf("err=%v calls=%d sleeps=%v", err, calls, fs.delays)
	}
}

func TestDoBacksOffExponentiallyWithCap(t *testing.T) {
	fs := &fakeSleep{}
	p := testPolicy(fs)
	p.MaxAttempts = 6
	p.BaseDelay = 50 * time.Millisecond
	p.MaxDelay = 300 * time.Millisecond
	boom := errors.New("boom")
	err := p.Do(context.Background(), func(context.Context) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	want := []time.Duration{
		50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond,
		300 * time.Millisecond, 300 * time.Millisecond, // capped
	}
	if len(fs.delays) != len(want) {
		t.Fatalf("slept %v, want %v", fs.delays, want)
	}
	for i, d := range want {
		if fs.delays[i] != d {
			t.Errorf("delay[%d] = %v, want %v", i, fs.delays[i], d)
		}
	}
}

func TestDoHonorsRetryAfterHint(t *testing.T) {
	fs := &fakeSleep{}
	p := testPolicy(fs)
	p.MaxAttempts = 3
	shed := errors.New("shed")
	err := p.Do(context.Background(), func(context.Context) error {
		return After(shed, 700*time.Millisecond)
	})
	if !errors.Is(err, shed) {
		t.Fatalf("err = %v", err)
	}
	for i, d := range fs.delays {
		if d != 700*time.Millisecond {
			t.Errorf("delay[%d] = %v, want the 700ms server hint", i, d)
		}
	}
	// The hint is still capped by MaxDelay.
	fs.delays = nil
	p.MaxDelay = 100 * time.Millisecond
	p.Do(context.Background(), func(context.Context) error { //nolint:errcheck
		return After(shed, time.Hour)
	})
	for i, d := range fs.delays {
		if d != 100*time.Millisecond {
			t.Errorf("capped delay[%d] = %v, want 100ms", i, d)
		}
	}
}

func TestDoStopsOnPermanent(t *testing.T) {
	fs := &fakeSleep{}
	calls := 0
	bad := errors.New("bad request")
	err := testPolicy(fs).Do(context.Background(), func(context.Context) error {
		calls++
		return Permanent(bad)
	})
	if !errors.Is(err, bad) || calls != 1 {
		t.Fatalf("err=%v calls=%d, want immediate stop with the original error", err, calls)
	}
	// The permanent marker must not leak into the returned error chain as a
	// wrapper type callers can trip over; the message is the original's.
	if err.Error() != "bad request" {
		t.Errorf("error message %q", err.Error())
	}
	if Permanent(nil) != nil || After(nil, time.Second) != nil {
		t.Error("nil wrappers must stay nil")
	}
}

func TestDoRespectsContextDeadline(t *testing.T) {
	fs := &fakeSleep{}
	p := testPolicy(fs)
	p.BaseDelay = time.Hour // guaranteed to overrun the deadline
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	boom := errors.New("boom")
	calls := 0
	start := time.Now()
	err := p.Do(ctx, func(context.Context) error { calls++; return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom preserved", err)
	}
	if calls != 1 {
		t.Errorf("calls = %d, want 1 (delay overruns deadline)", calls)
	}
	if time.Since(start) > time.Second {
		t.Error("Do slept into a doomed deadline")
	}
}

func TestDoStopsOnCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := DefaultPolicy().Do(ctx, func(context.Context) error {
		t.Fatal("op ran under a cancelled context")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	// Cancellation mid-schedule keeps the last real error in the chain.
	ctx2, cancel2 := context.WithCancel(context.Background())
	boom := errors.New("boom")
	p := DefaultPolicy()
	p.Sleep = func(context.Context, time.Duration) error { cancel2(); return ctx2.Err() }
	err = p.Do(ctx2, func(context.Context) error { return boom })
	if !errors.Is(err, boom) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want both boom and Canceled in the chain", err)
	}
}

func TestJitterStaysWithinBand(t *testing.T) {
	p := Policy{MaxAttempts: 2, BaseDelay: time.Second, Jitter: 0.5}
	for _, r := range []float64{0, 0.5, 1} {
		p.Rand = func() float64 { return r }
		d := p.next(0, 0)
		lo, hi := 500*time.Millisecond, 1500*time.Millisecond
		if d < lo || d > hi {
			t.Errorf("rand=%v: delay %v outside [%v,%v]", r, d, lo, hi)
		}
	}
}

func TestHTTPRetryAfter(t *testing.T) {
	h := http.Header{}
	if d := HTTPRetryAfter(h); d != 0 {
		t.Errorf("empty header: %v", d)
	}
	h.Set("Retry-After", "1")
	if d := HTTPRetryAfter(h); d != time.Second {
		t.Errorf("Retry-After 1 -> %v", d)
	}
	h.Set("Retry-After", "0.25")
	if d := HTTPRetryAfter(h); d != 250*time.Millisecond {
		t.Errorf("Retry-After 0.25 -> %v", d)
	}
	for _, bad := range []string{"-3", "soon", "Wed, 21 Oct 2015 07:28:00 GMT"} {
		h.Set("Retry-After", bad)
		if d := HTTPRetryAfter(h); d != 0 {
			t.Errorf("Retry-After %q -> %v, want 0", bad, d)
		}
	}
}

// TestDoAgainstSheddingServer exercises the full loop against a live HTTP
// server that sheds twice with 503+Retry-After before answering — the
// serving tier's load-shed protocol end to end.
func TestDoAgainstSheddingServer(t *testing.T) {
	attempts := 0
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		if attempts <= 2 {
			w.Header().Set("Retry-After", "0.001")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	srv := newLocalServer(t, h)
	p := DefaultPolicy()
	p.BaseDelay = time.Millisecond
	err := p.Do(context.Background(), func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv, nil)
		if err != nil {
			return Permanent(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK:
			return nil
		case resp.StatusCode == http.StatusServiceUnavailable:
			return After(fmt.Errorf("shed (503)"), HTTPRetryAfter(resp.Header))
		default:
			return Permanent(fmt.Errorf("status %d", resp.StatusCode))
		}
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if attempts != 3 {
		t.Errorf("attempts = %d, want 3", attempts)
	}
}
