// Package retry implements capped exponential backoff with jitter for
// operations against flaky peers — the cluster router's shard calls, and any
// client of the serving tier's 503+Retry-After load-shedding protocol.
//
// The policy follows the degradation taxonomy the HTTP layer already speaks:
// a shed or overloaded peer answers 503 with a Retry-After hint, which the
// caller wraps with After so the hint overrides the computed backoff; a
// request that can never succeed (400, 404) is wrapped with Permanent so no
// further attempts are wasted; everything else (network errors, torn
// connections, 5xx without a hint) retries on the capped exponential
// schedule. Context cancellation and deadlines are honored between attempts:
// a sleep never outlives the caller's budget.
package retry

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Policy describes a retry schedule. The zero value is not useful; start
// from DefaultPolicy.
type Policy struct {
	// MaxAttempts bounds the total attempts (first try included); values
	// below 1 mean a single attempt.
	MaxAttempts int
	// BaseDelay is the sleep after the first failure; each subsequent delay
	// multiplies by Multiplier up to MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps the computed delay (and any server-supplied Retry-After
	// hint — a peer cannot park a caller indefinitely).
	MaxDelay time.Duration
	// Multiplier grows the delay between attempts; values at or below 1
	// mean a constant delay (useful for test polling loops).
	Multiplier float64
	// Jitter randomizes each delay within ±Jitter·delay, de-synchronizing
	// retry storms from concurrent callers. 0 disables jitter; values are
	// clamped to [0, 1].
	Jitter float64
	// Rand supplies the jitter source; nil uses a process-wide seeded
	// source. Tests inject deterministic sources.
	Rand func() float64
	// Sleep performs the inter-attempt wait; nil uses a timer that aborts
	// on ctx cancellation. Tests inject fakes to avoid wall-clock waits.
	Sleep func(ctx context.Context, d time.Duration) error
}

// DefaultPolicy returns the production schedule: four attempts spanning
// roughly 50ms + 100ms + 200ms of backoff with 20% jitter.
func DefaultPolicy() Policy {
	return Policy{
		MaxAttempts: 4,
		BaseDelay:   50 * time.Millisecond,
		MaxDelay:    2 * time.Second,
		Multiplier:  2,
		Jitter:      0.2,
	}
}

// permanentError marks an error that must not be retried.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so Do stops immediately and returns the original
// error. A nil err returns nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// afterError carries a server-supplied retry delay (Retry-After).
type afterError struct {
	err   error
	delay time.Duration
}

func (e *afterError) Error() string { return e.err.Error() }
func (e *afterError) Unwrap() error { return e.err }

// After wraps err with a server-directed delay hint: the next attempt waits
// hint (capped by Policy.MaxDelay) instead of the computed backoff. A nil
// err returns nil.
func After(err error, hint time.Duration) error {
	if err == nil {
		return nil
	}
	return &afterError{err: err, delay: hint}
}

// HTTPRetryAfter extracts the Retry-After delay from a response header,
// or 0 when absent or unparseable. Only the delta-seconds form is
// understood (the form the serving tier emits).
func HTTPRetryAfter(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.ParseFloat(v, 64)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs * float64(time.Second))
}

// jitterMu guards the process-wide jitter source: retries happen on slow
// paths, so one mutex is cheaper than per-policy generator plumbing.
var (
	jitterMu  sync.Mutex
	jitterRng = rand.New(rand.NewSource(time.Now().UnixNano()))
)

func defaultRand() float64 {
	jitterMu.Lock()
	defer jitterMu.Unlock()
	return jitterRng.Float64()
}

// next computes the delay before attempt attempt+1 (0-based), applying the
// cap and jitter, honoring a server hint from the last error.
func (p Policy) next(attempt int, hint time.Duration) time.Duration {
	d := p.BaseDelay
	mult := p.Multiplier
	if mult > 1 {
		for i := 0; i < attempt; i++ {
			d = time.Duration(float64(d) * mult)
			if p.MaxDelay > 0 && d >= p.MaxDelay {
				d = p.MaxDelay
				break
			}
		}
	}
	if hint > 0 {
		d = hint
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	if j := min(max(p.Jitter, 0), 1); j > 0 && d > 0 {
		r := p.Rand
		if r == nil {
			r = defaultRand
		}
		// Uniform in [1-j, 1+j].
		d = time.Duration(float64(d) * (1 - j + 2*j*r()))
	}
	return d
}

func (p Policy) sleep(ctx context.Context, d time.Duration) error {
	if p.Sleep != nil {
		return p.Sleep(ctx, d)
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Do runs op until it succeeds, returns a Permanent error, exhausts
// MaxAttempts, or ctx ends. The returned error is the last attempt's
// (unwrapped from the Permanent/After markers); when the context ended
// between attempts it is joined with the context error so callers can match
// either cause. A delay that would provably overrun the context deadline
// short-circuits: Do returns the last error immediately instead of sleeping
// into a guaranteed cancellation.
func (p Policy) Do(ctx context.Context, op func(ctx context.Context) error) error {
	attempts := max(p.MaxAttempts, 1)
	var last error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			if last == nil {
				return err
			}
			return fmt.Errorf("%w (giving up: %w)", last, err)
		}
		err := op(ctx)
		if err == nil {
			return nil
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			return perm.err
		}
		var hint time.Duration
		var after *afterError
		if errors.As(err, &after) {
			hint = after.delay
			err = after.err
		}
		last = err
		if attempt+1 >= attempts {
			return last
		}
		d := p.next(attempt, hint)
		if dl, ok := ctx.Deadline(); ok && time.Until(dl) < d {
			return fmt.Errorf("%w (giving up: retry delay %v exceeds context deadline)", last, d)
		}
		if serr := p.sleep(ctx, d); serr != nil {
			return fmt.Errorf("%w (giving up: %w)", last, serr)
		}
	}
}
