package stats

import "sync"

// ConcurrentHistogram is a mutex-guarded Histogram safe for concurrent
// writers and readers. The serving layer uses it for histograms fed by
// request handlers while metrics endpoints read quantiles; the plain
// Histogram remains lock-free for the single-threaded simulator hot path.
type ConcurrentHistogram struct {
	mu sync.RWMutex
	h  *Histogram
}

// NewConcurrentHistogram builds a concurrent histogram covering [min, max)
// with the given bucket growth factor.
func NewConcurrentHistogram(min, max, growth float64) (*ConcurrentHistogram, error) {
	h, err := NewHistogram(min, max, growth)
	if err != nil {
		return nil, err
	}
	return &ConcurrentHistogram{h: h}, nil
}

// NewConcurrentLatencyHistogram returns a concurrent histogram with the
// standard latency layout (1 µs to 1000 s, 5% resolution).
func NewConcurrentLatencyHistogram() *ConcurrentHistogram {
	return &ConcurrentHistogram{h: NewLatencyHistogram()}
}

// Observe records one value.
func (c *ConcurrentHistogram) Observe(v float64) {
	c.mu.Lock()
	c.h.Observe(v)
	c.mu.Unlock()
}

// Count returns the number of observations.
func (c *ConcurrentHistogram) Count() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.h.Count()
}

// Dropped returns the number of rejected observations (NaN, ±Inf or
// negative values passed to Observe).
func (c *ConcurrentHistogram) Dropped() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.h.Dropped()
}

// Mean returns the exact mean of the observed values (0 when empty).
func (c *ConcurrentHistogram) Mean() float64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.h.Mean()
}

// Max returns the largest observed value (0 when empty).
func (c *ConcurrentHistogram) Max() float64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.h.Max()
}

// Quantile returns an upper bound of the q-quantile (0 when empty).
func (c *ConcurrentHistogram) Quantile(q float64) float64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.h.Quantile(q)
}

// FractionBelow estimates P(X <= x) (0 when empty).
func (c *ConcurrentHistogram) FractionBelow(x float64) float64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.h.FractionBelow(x)
}

// Merge adds a plain histogram's observations. The layouts must match.
func (c *ConcurrentHistogram) Merge(other *Histogram) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.h.Merge(other)
}

// MergeConcurrent adds another concurrent histogram's observations. It
// snapshots the other histogram first, so the two locks are never held
// together (no ordering deadlock when two histograms merge each other).
func (c *ConcurrentHistogram) MergeConcurrent(other *ConcurrentHistogram) error {
	snap := other.Snapshot()
	return c.Merge(snap)
}

// Snapshot returns a deep copy as a plain Histogram for lock-free reading.
func (c *ConcurrentHistogram) Snapshot() *Histogram {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.h.Clone()
}

// Reset clears all observations.
func (c *ConcurrentHistogram) Reset() {
	c.mu.Lock()
	c.h.Reset()
	c.mu.Unlock()
}
