package stats

import (
	"math"
	"sync"
	"testing"
)

// TestConcurrentHistogramRace exercises parallel writers, readers and
// mergers; run with -race to verify the locking.
func TestConcurrentHistogramRace(t *testing.T) {
	h := NewConcurrentLatencyHistogram()
	other := NewConcurrentLatencyHistogram()
	const (
		writers = 8
		readers = 4
		perG    = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(1e-3 * float64(w*perG+i+1) / perG)
				if i%100 == 0 {
					other.Observe(2e-3)
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if q := h.Quantile(0.95); math.IsNaN(q) || q < 0 {
					t.Errorf("bad quantile %v", q)
					return
				}
				_ = h.Mean()
				_ = h.Count()
				_ = h.FractionBelow(5e-3)
				if i%200 == 0 {
					_ = h.Snapshot()
					if err := h.MergeConcurrent(other); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if h.Count() < writers*perG {
		t.Errorf("lost observations: %d < %d", h.Count(), writers*perG)
	}
	if h.Max() <= 0 {
		t.Errorf("max %v", h.Max())
	}
}

// TestConcurrentHistogramDelegation checks that the wrapper returns the same
// answers as a plain histogram fed identically.
func TestConcurrentHistogramDelegation(t *testing.T) {
	c, err := NewConcurrentHistogram(1e-6, 1e3, 1.05)
	if err != nil {
		t.Fatal(err)
	}
	p := NewLatencyHistogram()
	for i := 1; i <= 1000; i++ {
		v := float64(i) * 1e-4
		c.Observe(v)
		p.Observe(v)
	}
	if c.Count() != p.Count() || c.Mean() != p.Mean() || c.Max() != p.Max() {
		t.Errorf("summary mismatch: %d/%v/%v vs %d/%v/%v",
			c.Count(), c.Mean(), c.Max(), p.Count(), p.Mean(), p.Max())
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 1} {
		if c.Quantile(q) != p.Quantile(q) {
			t.Errorf("quantile(%v): %v vs %v", q, c.Quantile(q), p.Quantile(q))
		}
	}
	snap := c.Snapshot()
	if snap.Count() != p.Count() {
		t.Errorf("snapshot count %d", snap.Count())
	}
	c.Reset()
	if c.Count() != 0 {
		t.Errorf("reset left %d observations", c.Count())
	}
}

func TestNewConcurrentHistogramBadParams(t *testing.T) {
	if _, err := NewConcurrentHistogram(0, 1, 1.1); err == nil {
		t.Error("min=0 should fail")
	}
	if _, err := NewConcurrentHistogram(1e-6, 1e3, 1); err == nil {
		t.Error("growth=1 should fail")
	}
}

// TestEmptyHistogramEdgeCases pins the behaviour of every query on a
// histogram with zero observations.
func TestEmptyHistogramEdgeCases(t *testing.T) {
	h := NewLatencyHistogram()
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("Quantile on empty = %v, want 0", got)
	}
	if got := h.Quantile(1); got != 0 {
		t.Errorf("Quantile(1) on empty = %v, want 0", got)
	}
	if !math.IsNaN(h.Quantile(0)) || !math.IsNaN(h.Quantile(1.5)) {
		t.Error("out-of-range q should stay NaN")
	}
	if got := h.Mean(); got != 0 {
		t.Errorf("Mean on empty = %v, want 0", got)
	}
	if got := h.Max(); got != 0 {
		t.Errorf("Max on empty = %v, want 0", got)
	}
	if got := h.FractionBelow(1); got != 0 {
		t.Errorf("FractionBelow on empty = %v, want 0", got)
	}
	// Nil-safe merge and sub.
	if err := h.Merge(nil); err != nil {
		t.Errorf("Merge(nil): %v", err)
	}
	h.Observe(1e-3)
	delta, err := h.Sub(nil)
	if err != nil {
		t.Fatalf("Sub(nil): %v", err)
	}
	if delta.Count() != 1 {
		t.Errorf("Sub(nil) count = %d, want 1", delta.Count())
	}
	// Merging an empty histogram of a different layout is a no-op, not an
	// error: there is nothing to misattribute.
	empty, err := NewHistogram(1, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Merge(empty); err != nil {
		t.Errorf("merging empty mismatched layout: %v", err)
	}
	if h.Count() != 1 {
		t.Errorf("count changed to %d", h.Count())
	}
}
