package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewHistogramValidation(t *testing.T) {
	cases := []struct{ min, max, growth float64 }{
		{0, 1, 1.1},
		{-1, 1, 1.1},
		{1, 1, 1.1},
		{1, 2, 1},
		{1, 2, 0.9},
	}
	for i, c := range cases {
		if _, err := NewHistogram(c.min, c.max, c.growth); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	if _, err := NewHistogram(1e-6, 10, 1.05); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewLatencyHistogram()
	rng := rand.New(rand.NewSource(7))
	values := make([]float64, 50000)
	for i := range values {
		// Latency-shaped: lognormal around 10ms.
		values[i] = 0.010 * math.Exp(0.8*rng.NormFloat64())
		h.Observe(values[i])
	}
	sort.Float64s(values)
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 0.999} {
		exact := values[int(q*float64(len(values)))-1]
		got := h.Quantile(q)
		// Log-bucketed: relative error bounded by the growth factor.
		if got < exact/1.06 || got > exact*1.12 {
			t.Errorf("q%v = %v, exact %v", q, got, exact)
		}
	}
	if got := h.Mean(); math.Abs(got-mean(values))/mean(values) > 1e-9 {
		t.Errorf("mean = %v, want %v", got, mean(values))
	}
	if h.Max() != values[len(values)-1] {
		t.Errorf("max = %v", h.Max())
	}
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestHistogramEdges(t *testing.T) {
	h, err := NewHistogram(0.001, 1, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
	if !math.IsNaN(h.Quantile(0)) || !math.IsNaN(h.Quantile(1.5)) {
		t.Error("out-of-range q should be NaN")
	}
	h.Observe(1e-9) // underflow
	h.Observe(100)  // overflow
	if h.Count() != 2 {
		t.Errorf("count = %d", h.Count())
	}
	if got := h.Quantile(0.5); got != h.min {
		t.Errorf("underflow quantile = %v, want min", got)
	}
	if got := h.Quantile(1); got != 100 {
		t.Errorf("overflow quantile = %v, want observed max", got)
	}
	if got := h.FractionBelow(1e-10); got != 0 {
		t.Errorf("FractionBelow(min-) = %v", got)
	}
	if got := h.FractionBelow(1000); got != 1 {
		t.Errorf("FractionBelow(max+) = %v", got)
	}
}

func TestHistogramFractionBelow(t *testing.T) {
	h := NewLatencyHistogram()
	rng := rand.New(rand.NewSource(11))
	const n = 100000
	for i := 0; i < n; i++ {
		h.Observe(rng.ExpFloat64() * 0.01)
	}
	for _, x := range []float64{0.002, 0.01, 0.05} {
		want := 1 - math.Exp(-x/0.01)
		got := h.FractionBelow(x)
		if math.Abs(got-want) > 0.02 {
			t.Errorf("FractionBelow(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestHistogramMergeAndReset(t *testing.T) {
	a := NewLatencyHistogram()
	b := NewLatencyHistogram()
	a.Observe(0.001)
	b.Observe(0.1)
	b.Observe(0.2)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 3 {
		t.Errorf("merged count = %d", a.Count())
	}
	if a.Max() != 0.2 {
		t.Errorf("merged max = %v", a.Max())
	}
	other, _ := NewHistogram(1, 2, 1.5)
	other.Observe(1.5)
	if err := a.Merge(other); err == nil {
		t.Error("mismatched layouts should fail")
	}
	c := a.Clone()
	a.Reset()
	if a.Count() != 0 || a.Mean() != 0 {
		t.Error("reset failed")
	}
	if c.Count() != 3 {
		t.Error("clone should be independent of reset")
	}
}

func TestHistogramSub(t *testing.T) {
	h := NewLatencyHistogram()
	h.Observe(0.001)
	h.Observe(0.010)
	snap := h.Clone()
	h.Observe(0.100)
	h.Observe(0.200)
	delta, err := h.Sub(snap)
	if err != nil {
		t.Fatal(err)
	}
	if delta.Count() != 2 {
		t.Errorf("delta count = %d", delta.Count())
	}
	if math.Abs(delta.Mean()-0.15) > 1e-12 {
		t.Errorf("delta mean = %v", delta.Mean())
	}
	if q := delta.Quantile(0.5); q < 0.1 || q > 0.115 {
		t.Errorf("delta median = %v", q)
	}
	if _, err := snap.Sub(h); err == nil {
		t.Error("subtracting a later snapshot should fail")
	}
	other, _ := NewHistogram(1, 2, 1.5)
	if _, err := h.Sub(other); err == nil {
		t.Error("mismatched layouts should fail")
	}
}

func TestHistogramQuantileMonotoneProperty(t *testing.T) {
	h := NewLatencyHistogram()
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 10000; i++ {
		h.Observe(rng.Float64() * 0.5)
	}
	f := func(rawA, rawB float64) bool {
		qa := 0.01 + 0.98*math.Mod(math.Abs(rawA), 1)
		qb := 0.01 + 0.98*math.Mod(math.Abs(rawB), 1)
		if qa > qb {
			qa, qb = qb, qa
		}
		return h.Quantile(qa) <= h.Quantile(qb)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWilsonInterval(t *testing.T) {
	lo, hi := WilsonInterval(95, 100, 0.95)
	if !(lo < 0.95 && 0.95 < hi) {
		t.Errorf("interval [%v, %v] should contain the point estimate", lo, hi)
	}
	if lo < 0.87 || hi > 0.99 {
		t.Errorf("interval [%v, %v] implausibly wide", lo, hi)
	}
	// Edge cases stay in [0,1].
	lo, hi = WilsonInterval(0, 50, 0.95)
	if lo != 0 || hi < 0.01 || hi > 0.2 {
		t.Errorf("zero-success interval [%v, %v]", lo, hi)
	}
	lo, hi = WilsonInterval(50, 50, 0.95)
	if hi != 1 || lo > 0.99 || lo < 0.8 {
		t.Errorf("all-success interval [%v, %v]", lo, hi)
	}
	if lo, hi = WilsonInterval(0, 0, 0.95); lo != 0 || hi != 1 {
		t.Errorf("empty interval [%v, %v]", lo, hi)
	}
}

func TestWilsonIntervalCoverageProperty(t *testing.T) {
	// Frequentist sanity: over many binomial draws at p=0.9, the 95%
	// interval should cover p in roughly 95% of cases.
	rng := rand.New(rand.NewSource(17))
	const trials = 2000
	const n = 200
	const p = 0.9
	covered := 0
	for i := 0; i < trials; i++ {
		k := uint64(0)
		for j := 0; j < n; j++ {
			if rng.Float64() < p {
				k++
			}
		}
		lo, hi := WilsonInterval(k, n, 0.95)
		if lo <= p && p <= hi {
			covered++
		}
	}
	frac := float64(covered) / trials
	if frac < 0.92 || frac > 0.985 {
		t.Errorf("coverage = %v, want ~0.95", frac)
	}
}

func TestSummary(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.Variance() != 0 {
		t.Error("empty summary should be zero")
	}
	lo, hi := s.MeanCI(0.95)
	if lo != 0 || hi != 0 {
		t.Error("empty CI should be degenerate")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 || math.Abs(s.Mean()-5) > 1e-12 {
		t.Errorf("n=%d mean=%v", s.N(), s.Mean())
	}
	if math.Abs(s.Variance()-4) > 1e-12 {
		t.Errorf("variance = %v, want 4", s.Variance())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
	lo, hi = s.MeanCI(0.95)
	if !(lo < 5 && 5 < hi) {
		t.Errorf("CI [%v, %v]", lo, hi)
	}
}

func TestNormalQuantileTwoSided(t *testing.T) {
	if z := normalQuantileTwoSided(0.95); math.Abs(z-1.959964) > 1e-5 {
		t.Errorf("z(95%%) = %v", z)
	}
	if z := normalQuantileTwoSided(0.99); math.Abs(z-2.575829) > 1e-5 {
		t.Errorf("z(99%%) = %v", z)
	}
	// Out-of-range confidence clamps to the documented extremes: ~0 width
	// at the bottom, finite and monotone at the top. NaN behaves like 0.
	if z := normalQuantileTwoSided(0); !(z >= 0 && z < 0.01) {
		t.Errorf("z(0) = %v, want ~0 after clamping", z)
	}
	zTop := normalQuantileTwoSided(1)
	if !(zTop > 6 && zTop < 9) {
		t.Errorf("z(1) = %v, want finite ~7 after clamping", zTop)
	}
	if z := normalQuantileTwoSided(1.5); z != zTop {
		t.Errorf("z(1.5) = %v, want clamp to z(1) = %v", z, zTop)
	}
	if z := normalQuantileTwoSided(math.NaN()); !(z >= 0 && z < 0.01) {
		t.Errorf("z(NaN) = %v, want ~0 after clamping", z)
	}
	// Monotone in confidence across the interior.
	prev := -1.0
	for _, c := range []float64{0.1, 0.5, 0.8, 0.9, 0.95, 0.99, 0.999} {
		z := normalQuantileTwoSided(c)
		if z <= prev {
			t.Errorf("z(%v) = %v not monotone (prev %v)", c, z, prev)
		}
		prev = z
	}
}

func TestWilsonIntervalClampsKAboveN(t *testing.T) {
	// k > n would otherwise yield an interval around p > 1; it must clamp
	// to the all-success interval.
	lo, hi := WilsonInterval(60, 50, 0.95)
	loN, hiN := WilsonInterval(50, 50, 0.95)
	if lo != loN || hi != hiN {
		t.Errorf("k>n interval [%v, %v] != all-success interval [%v, %v]", lo, hi, loN, hiN)
	}
	if lo < 0 || hi > 1 {
		t.Errorf("interval [%v, %v] escapes [0,1]", lo, hi)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewLatencyHistogram()
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 4096)
	for i := range vals {
		vals[i] = rng.ExpFloat64() * 0.01
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(vals[i&4095])
	}
}
