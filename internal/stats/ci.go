package stats

import (
	"math"
)

// WilsonInterval returns the Wilson score confidence interval for a
// binomial proportion: successes k out of n trials at the given confidence
// level (e.g. 0.95). It is well-behaved near 0 and 1, where the observed
// SLA-meeting fractions live.
//
// Out-of-range inputs are clamped rather than silently accepted: k > n is
// treated as k = n (the proportion is at most 1, never an interval for
// p > 1), and a confidence outside (0, 1) is clamped per
// normalQuantileTwoSided.
func WilsonInterval(k, n uint64, confidence float64) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	if k > n {
		k = n
	}
	z := normalQuantileTwoSided(confidence)
	nn := float64(n)
	p := float64(k) / nn
	z2 := z * z
	denom := 1 + z2/nn
	center := (p + z2/(2*nn)) / denom
	half := z * math.Sqrt(p*(1-p)/nn+z2/(4*nn*nn)) / denom
	lo = center - half
	hi = center + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// normalQuantileTwoSided returns the z value such that the standard normal
// mass within ±z equals the confidence level. Confidence is clamped into
// [minConfidence, maxConfidence]: values at or below 0 (including NaN) give
// the z for minConfidence and values at or above 1 the z for maxConfidence,
// so callers always get a finite, monotone-in-confidence width instead of a
// silent substitution of the 95% quantile.
func normalQuantileTwoSided(confidence float64) float64 {
	const (
		minConfidence = 1e-12
		maxConfidence = 1 - 1e-12
	)
	if !(confidence > minConfidence) { // also catches NaN
		confidence = minConfidence
	} else if confidence > maxConfidence {
		confidence = maxConfidence
	}
	// Φ(z) = (1+confidence)/2; invert via the Acklam approximation in
	// numeric (re-implemented locally to avoid a dependency cycle if
	// numeric ever uses stats).
	p := (1 + confidence) / 2
	// Beasley-Springer-Moro style rational approximation refined by one
	// Newton step against erfc.
	z := bsmQuantile(p)
	for i := 0; i < 2; i++ {
		f := 0.5*math.Erfc(-z/math.Sqrt2) - p
		d := math.Exp(-z*z/2) / math.Sqrt(2*math.Pi)
		z -= f / d
	}
	return z
}

func bsmQuantile(p float64) float64 {
	a := [4]float64{2.50662823884, -18.61500062529, 41.39119773534, -25.44106049637}
	b := [4]float64{-8.47351093090, 23.08336743743, -21.06224101826, 3.13082909833}
	c := [9]float64{0.3374754822726147, 0.9761690190917186, 0.1607979714918209,
		0.0276438810333863, 0.0038405729373609, 0.0003951896511919,
		0.0000321767881768, 0.0000002888167364, 0.0000003960315187}
	y := p - 0.5
	if math.Abs(y) < 0.42 {
		r := y * y
		return y * (((a[3]*r+a[2])*r+a[1])*r + a[0]) /
			((((b[3]*r+b[2])*r+b[1])*r+b[0])*r + 1)
	}
	r := p
	if y > 0 {
		r = 1 - p
	}
	r = math.Log(-math.Log(r))
	x := c[0]
	pow := 1.0
	for i := 1; i < 9; i++ {
		pow *= r
		x += c[i] * pow
	}
	if y < 0 {
		x = -x
	}
	return x
}

// Summary accumulates streaming count/mean/variance/min/max via Welford's
// algorithm.
type Summary struct {
	n        uint64
	mean, m2 float64
	min, max float64
}

// Add records one value.
func (s *Summary) Add(v float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = v, v
	} else {
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
	}
	delta := v - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (v - s.mean)
}

// N returns the count.
func (s *Summary) N() uint64 { return s.n }

// Mean returns the running mean (0 when empty).
func (s *Summary) Mean() float64 { return s.mean }

// Variance returns the population variance (0 for fewer than 2 values).
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n)
}

// StdDev returns the population standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min and Max return the observed extremes (0 when empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observed value (0 when empty).
func (s *Summary) Max() float64 { return s.max }

// MeanCI returns a normal-approximation confidence interval for the mean.
func (s *Summary) MeanCI(confidence float64) (lo, hi float64) {
	if s.n < 2 {
		return s.mean, s.mean
	}
	z := normalQuantileTwoSided(confidence)
	half := z * s.StdDev() / math.Sqrt(float64(s.n))
	return s.mean - half, s.mean + half
}
