package stats

import (
	"math"
	"testing"
)

// TestHistogramObserveRejectsInvalid is the regression test for the NaN
// panic: NaN used to fall through both range guards into a huge negative
// bucket index, and negative/±Inf values silently corrupted sum/Mean.
func TestHistogramObserveRejectsInvalid(t *testing.T) {
	h := NewLatencyHistogram()
	bad := []float64{math.NaN(), math.Inf(1), math.Inf(-1), -1, -1e-300}
	for _, v := range bad {
		h.Observe(v) // must not panic
	}
	if h.Count() != 0 {
		t.Errorf("Count = %d after invalid observations, want 0", h.Count())
	}
	if h.Dropped() != uint64(len(bad)) {
		t.Errorf("Dropped = %d, want %d", h.Dropped(), len(bad))
	}
	h.Observe(0.5)
	h.Observe(math.NaN())
	if h.Count() != 1 || h.Dropped() != uint64(len(bad))+1 {
		t.Errorf("Count=%d Dropped=%d after mixed stream", h.Count(), h.Dropped())
	}
	if m := h.Mean(); math.IsNaN(m) || math.IsInf(m, 0) || math.Abs(m-0.5) > 1e-12 {
		t.Errorf("Mean = %v, want 0.5 and finite", m)
	}
	// Zero is valid (goes to underflow for a positive-min layout).
	h.Observe(0)
	if h.Count() != 2 {
		t.Errorf("Count = %d after observing 0, want 2", h.Count())
	}
}

func TestHistogramDroppedMergeSubReset(t *testing.T) {
	a := NewLatencyHistogram()
	b := NewLatencyHistogram()
	a.Observe(math.NaN())
	a.Observe(1)
	b.Observe(math.Inf(1))
	b.Observe(math.Inf(-1))
	// Merge must carry dropped even from a histogram with zero accepted
	// observations.
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Dropped() != 3 || a.Count() != 1 {
		t.Errorf("after merge: Dropped=%d Count=%d, want 3/1", a.Dropped(), a.Count())
	}

	snap := a.Clone()
	a.Observe(math.NaN())
	a.Observe(2)
	delta, err := a.Sub(snap)
	if err != nil {
		t.Fatal(err)
	}
	if delta.Dropped() != 1 || delta.Count() != 1 {
		t.Errorf("delta: Dropped=%d Count=%d, want 1/1", delta.Dropped(), delta.Count())
	}
	// Subtracting a later snapshot (more drops) must error, not wrap.
	if _, err := snap.Sub(a); err == nil {
		t.Error("Sub with later snapshot should fail")
	}

	a.Reset()
	if a.Dropped() != 0 || a.Count() != 0 {
		t.Errorf("after reset: Dropped=%d Count=%d", a.Dropped(), a.Count())
	}
}

func TestConcurrentHistogramDropped(t *testing.T) {
	c := NewConcurrentLatencyHistogram()
	c.Observe(math.NaN())
	c.Observe(0.001)
	if c.Dropped() != 1 || c.Count() != 1 {
		t.Errorf("Dropped=%d Count=%d, want 1/1", c.Dropped(), c.Count())
	}
}

// FuzzHistogramInvariants fuzzes the full observe/query surface: Observe
// must never panic, accepted/dropped bookkeeping must add up, Mean must be
// finite, Quantile must be monotone in q, and FractionBelow must stay in
// [0,1] and be monotone in x.
func FuzzHistogramInvariants(f *testing.F) {
	f.Add(0.001, 0.5, math.NaN(), 0.5, 0.01)
	f.Add(-1.0, math.Inf(1), 1e-9, 0.99, 1e3)
	f.Add(0.0, 1e300, -1e300, 1.0, 1e-6)
	f.Fuzz(func(t *testing.T, v1, v2, v3, q, x float64) {
		h := NewLatencyHistogram()
		for _, v := range []float64{v1, v2, v3} {
			h.Observe(v) // must not panic for any float64
		}
		if h.Count()+h.Dropped() != 3 {
			t.Fatalf("Count+Dropped = %d+%d, want 3", h.Count(), h.Dropped())
		}
		if m := h.Mean(); math.IsNaN(m) || math.IsInf(m, 0) {
			t.Fatalf("Mean = %v not finite", m)
		}
		if q > 0 && q <= 1 {
			lo := q / 2
			if lo <= 0 {
				lo = q
			}
			qa, qb := h.Quantile(lo), h.Quantile(q)
			if h.Count() > 0 && qa > qb+1e-12 {
				t.Fatalf("Quantile not monotone: Q(%v)=%v > Q(%v)=%v", lo, qa, q, qb)
			}
		}
		if !math.IsNaN(x) {
			fb := h.FractionBelow(x)
			if fb < 0 || fb > 1 || math.IsNaN(fb) {
				t.Fatalf("FractionBelow(%v) = %v outside [0,1]", x, fb)
			}
			if !math.IsInf(x, 0) {
				fb2 := h.FractionBelow(x * 2)
				if x > 0 && fb2+1e-9 < fb {
					t.Fatalf("FractionBelow not monotone: F(%v)=%v > F(%v)=%v", x, fb, 2*x, fb2)
				}
			}
		}
	})
}
