// Package stats provides online statistics for the simulator's metrics
// pipeline: a log-bucketed latency histogram with quantile queries (HDR
// style, constant memory), binomial proportion confidence intervals for
// observed percentiles, and streaming summary statistics.
package stats

import (
	"errors"
	"fmt"
	"math"
)

// ErrBadHistogram reports invalid histogram construction parameters.
var ErrBadHistogram = errors.New("stats: histogram needs 0 < min < max and growth > 1")

// Histogram is a logarithmically bucketed histogram for positive values
// (latencies). Bucket i covers [min·g^i, min·g^(i+1)); values below min go
// to an underflow bucket, values at or above max to an overflow bucket.
// Quantile queries return bucket upper bounds, giving a relative error
// bounded by the growth factor.
type Histogram struct {
	min, max float64
	growth   float64
	logG     float64

	underflow uint64
	overflow  uint64
	dropped   uint64
	buckets   []uint64
	count     uint64
	sum       float64
	maxSeen   float64
}

// NewHistogram builds a histogram covering [min, max) with the given bucket
// growth factor (e.g. 1.1 for ~10% quantile resolution).
func NewHistogram(min, max, growth float64) (*Histogram, error) {
	if !(min > 0) || !(max > min) || !(growth > 1) {
		return nil, fmt.Errorf("%w: min=%v max=%v growth=%v", ErrBadHistogram, min, max, growth)
	}
	n := int(math.Ceil(math.Log(max/min)/math.Log(growth))) + 1
	return &Histogram{
		min:     min,
		max:     max,
		growth:  growth,
		logG:    math.Log(growth),
		buckets: make([]uint64, n),
	}, nil
}

// NewLatencyHistogram returns a histogram suitable for request latencies:
// 1 µs to 1000 s with 5% resolution.
func NewLatencyHistogram() *Histogram {
	h, err := NewHistogram(1e-6, 1e3, 1.05)
	if err != nil {
		panic("stats: latency histogram construction cannot fail: " + err.Error())
	}
	return h
}

// Observe records one value. Invalid values — NaN, ±Inf and negatives —
// are rejected and counted in Dropped instead: a NaN would otherwise fall
// through both range guards into a wild bucket index (panic), and negative
// or infinite values would silently poison the exact sum behind Mean.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		h.dropped++
		return
	}
	h.count++
	h.sum += v
	if v > h.maxSeen {
		h.maxSeen = v
	}
	switch {
	case v < h.min:
		h.underflow++
	case v >= h.max:
		h.overflow++
	default:
		i := int(math.Log(v/h.min) / h.logG)
		if i >= len(h.buckets) {
			i = len(h.buckets) - 1
		}
		h.buckets[i]++
	}
}

// Count returns the number of accepted observations.
func (h *Histogram) Count() uint64 { return h.count }

// Dropped returns the number of rejected observations (NaN, ±Inf or
// negative values passed to Observe). Dropped values never contribute to
// Count, Mean, Max, quantiles or fractions.
func (h *Histogram) Dropped() uint64 { return h.dropped }

// Mean returns the exact mean of the observed values.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Max returns the largest observed value.
func (h *Histogram) Max() float64 { return h.maxSeen }

// Quantile returns an upper bound of the q-quantile (the upper edge of the
// bucket containing it). q outside (0,1] returns NaN; an empty histogram
// returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	if q <= 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	if h.count == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	acc := h.underflow
	if acc >= target {
		return h.min
	}
	for i, c := range h.buckets {
		acc += c
		if acc >= target {
			return h.min * math.Pow(h.growth, float64(i+1))
		}
	}
	// In the overflow region the best bound we have is the observed max.
	return h.maxSeen
}

// FractionBelow returns an estimate of P(X <= x): the fraction of
// observations in buckets entirely at or below x, interpolating within the
// straddling bucket.
func (h *Histogram) FractionBelow(x float64) float64 {
	if h.count == 0 {
		return 0
	}
	if x < h.min {
		return 0
	}
	acc := float64(h.underflow)
	for i, c := range h.buckets {
		lo := h.min * math.Pow(h.growth, float64(i))
		hi := lo * h.growth
		switch {
		case hi <= x:
			acc += float64(c)
		case lo <= x:
			acc += float64(c) * (x - lo) / (hi - lo)
		default:
			return acc / float64(h.count)
		}
	}
	if x >= h.max {
		acc += float64(h.overflow)
	}
	return acc / float64(h.count)
}

// Merge adds other's observations into h. The histograms must have
// identical bucket layouts. A nil or empty other is a no-op.
func (h *Histogram) Merge(other *Histogram) error {
	if other == nil || (other.count == 0 && other.dropped == 0) {
		return nil
	}
	if other.min != h.min || other.max != h.max || other.growth != h.growth {
		return fmt.Errorf("%w: mismatched layouts", ErrBadHistogram)
	}
	h.underflow += other.underflow
	h.overflow += other.overflow
	h.dropped += other.dropped
	for i := range h.buckets {
		h.buckets[i] += other.buckets[i]
	}
	h.count += other.count
	h.sum += other.sum
	if other.maxSeen > h.maxSeen {
		h.maxSeen = other.maxSeen
	}
	return nil
}

// Reset clears all observations.
func (h *Histogram) Reset() {
	h.underflow, h.overflow, h.count, h.dropped = 0, 0, 0, 0
	h.sum, h.maxSeen = 0, 0
	for i := range h.buckets {
		h.buckets[i] = 0
	}
}

// Clone returns a deep copy (for snapshot/delta bookkeeping).
func (h *Histogram) Clone() *Histogram {
	out := *h
	out.buckets = append([]uint64(nil), h.buckets...)
	return &out
}

// Sub returns the delta histogram h - prev, where prev is an earlier
// snapshot of the same (monotonically growing) histogram. The exact sum is
// preserved; the delta's Max is h's (an upper bound for the window). A nil
// prev is treated as an empty snapshot: the delta is a copy of h.
func (h *Histogram) Sub(prev *Histogram) (*Histogram, error) {
	if prev == nil {
		return h.Clone(), nil
	}
	if prev.min != h.min || prev.max != h.max || prev.growth != h.growth {
		return nil, fmt.Errorf("%w: mismatched layouts", ErrBadHistogram)
	}
	if prev.count > h.count || prev.dropped > h.dropped {
		return nil, fmt.Errorf("%w: subtracting a later snapshot", ErrBadHistogram)
	}
	out := h.Clone()
	out.underflow -= prev.underflow
	out.overflow -= prev.overflow
	out.dropped -= prev.dropped
	for i := range out.buckets {
		out.buckets[i] -= prev.buckets[i]
	}
	out.count -= prev.count
	out.sum -= prev.sum
	return out, nil
}
