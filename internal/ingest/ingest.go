// Package ingest is the high-throughput observation-ingest subsystem: the
// data plane between the HTTP layer and the prediction engine's sliding
// windows. Three pieces make a million observations per second feasible on
// one serving node:
//
//   - a striped state Table: device d lands in stripe d mod S, each stripe
//     with its own lock and windows, so concurrent batches for disjoint
//     devices update state without serializing on one mutex (Stripes=1 is
//     exactly the original single-lock layout);
//   - a bounded Ring hand-off that decouples ingest acceptance from
//     downstream consumers (the online-calibration feed): pushes never
//     block, and overflow is counted — dropped work is surfaced, never
//     silent;
//   - a streaming NDJSON decoder with pooled chunk buffers, so a large
//     batch is validated and absorbed chunk by chunk with O(chunk) live
//     memory instead of materializing the whole payload.
//
// The package owns the Observation wire type; internal/serve aliases it so
// the HTTP surface is unchanged.
package ingest

import (
	"errors"
	"fmt"
	"math"
)

// ErrInvalid reports an observation or batch that failed validation.
var ErrInvalid = errors.New("ingest: invalid observation")

// MaxClassLen bounds tenant class labels: long enough for any sane tenant
// name, short enough that labels can't balloon cache keys.
const MaxClassLen = 64

// Observation is one batch of per-device measurements covering Interval
// seconds of operation — the raw material of the paper's §IV-B online
// metrics. Counters are deltas over the interval, not cumulative totals.
type Observation struct {
	// Device identifies the storage device, 0 <= Device < Config.Devices.
	Device int `json:"device"`
	// Class optionally labels the tenant / SLA class the counters belong
	// to. Empty is the default (single-tenant) class. Class-labelled
	// observations land both in the aggregate table and in the per-class
	// partition, so per-tenant rates can be read without touching the
	// shared operating point.
	Class string `json:"class,omitempty"`
	// Interval is the wall-clock span the counters cover (seconds).
	Interval float64 `json:"interval"`
	// Requests is the number of requests routed to the device (r·Interval).
	Requests uint64 `json:"requests"`
	// DataReads is the number of data read operations, cache hits and
	// misses alike (rdata·Interval).
	DataReads uint64 `json:"dataReads"`
	// Cache accesses per operation class.
	IndexHits   uint64 `json:"indexHits"`
	IndexMisses uint64 `json:"indexMisses"`
	MetaHits    uint64 `json:"metaHits"`
	MetaMisses  uint64 `json:"metaMisses"`
	DataHits    uint64 `json:"dataHits"`
	DataMisses  uint64 `json:"dataMisses"`
	// DiskBusy is the disk busy time (seconds) over DiskOps operations;
	// together they give the observed overall mean disk service time b.
	DiskBusy float64 `json:"diskBusy"`
	DiskOps  uint64  `json:"diskOps"`
	// Writes is the number of PUT replica sub-requests the device served
	// over the interval and WriteChunks the number of data chunk write
	// operations they issued; their ratio is the model's mean
	// chunks-per-write. Zero means a read-only interval — the exact
	// read-path pipeline of the paper.
	Writes      uint64 `json:"writes,omitempty"`
	WriteChunks uint64 `json:"writeChunks,omitempty"`
	// Latencies are optional raw response latencies (seconds) observed at
	// the frontend, kept in sliding-window histograms for the observed
	// SLA-compliance diagnostics in /metrics.
	Latencies []float64 `json:"latencies,omitempty"`
	// DiskIndexLat, DiskMetaLat and DiskDataLat are optional raw disk
	// service times (seconds) per operation class sampled during the
	// interval — the feed for the online calibration subsystem's live
	// refits and shape checks. Ignored (beyond validation) when
	// calibration is disabled.
	DiskIndexLat []float64 `json:"diskIndexLat,omitempty"`
	DiskMetaLat  []float64 `json:"diskMetaLat,omitempty"`
	DiskDataLat  []float64 `json:"diskDataLat,omitempty"`
}

// Validate checks one observation against the deployment size.
func (o Observation) Validate(devices int) error {
	switch {
	case o.Device < 0 || o.Device >= devices:
		return fmt.Errorf("%w: device %d outside [0,%d)", ErrInvalid, o.Device, devices)
	case o.Interval <= 0 || math.IsNaN(o.Interval) || math.IsInf(o.Interval, 0):
		return fmt.Errorf("%w: interval %v must be positive and finite", ErrInvalid, o.Interval)
	case o.DiskBusy < 0 || math.IsNaN(o.DiskBusy) || math.IsInf(o.DiskBusy, 0):
		return fmt.Errorf("%w: disk busy time %v", ErrInvalid, o.DiskBusy)
	case len(o.Class) > MaxClassLen:
		return fmt.Errorf("%w: class label longer than %d bytes", ErrInvalid, MaxClassLen)
	case o.WriteChunks > 0 && o.Writes == 0:
		return fmt.Errorf("%w: %d write chunks without writes", ErrInvalid, o.WriteChunks)
	}
	for i := 0; i < len(o.Class); i++ {
		if c := o.Class[i]; c < 0x20 || c == 0x7f {
			return fmt.Errorf("%w: control character in class label", ErrInvalid)
		}
	}
	for _, l := range o.Latencies {
		if l < 0 || math.IsNaN(l) || math.IsInf(l, 0) {
			return fmt.Errorf("%w: latency %v", ErrInvalid, l)
		}
	}
	for _, set := range [][]float64{o.DiskIndexLat, o.DiskMetaLat, o.DiskDataLat} {
		for _, l := range set {
			if l < 0 || math.IsNaN(l) || math.IsInf(l, 0) {
				return fmt.Errorf("%w: disk service sample %v", ErrInvalid, l)
			}
		}
	}
	return nil
}

// MissRatio converts hit/miss counters into the model's miss ratio.
func MissRatio(misses, hits uint64) float64 {
	if misses+hits == 0 {
		return 0
	}
	return float64(misses) / float64(misses+hits)
}
