package ingest

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// FuzzNDJSONScannerEquivalence pins the hand-rolled line scanner against
// the stdlib-only decode path: identical accepted observations (deep
// equality, nil-vs-empty slices included), identical accepted counts, and
// identical error text for every input.
func FuzzNDJSONScannerEquivalence(f *testing.F) {
	f.Add([]byte(`{"device":0,"interval":1,"requests":5}` + "\n"))
	f.Add([]byte(`{"device":1,"interval":0.5,"class":"gold","writes":3,"writeChunks":7}` + "\n"))
	f.Add([]byte(`{"device":2,"interval":2,"latencies":[0.1,0.2],"diskDataLat":[]}` + "\n"))
	f.Add([]byte(`{"device":0,"interval":1e-3,"diskBusy":0.25,"diskOps":9}` + "\n"))
	f.Add([]byte(`{"device":0,"interval":1.7976931348623157e308}` + "\n"))
	f.Add([]byte(`{"device":0,"interval":0.1234567890123456789}` + "\n"))
	f.Add([]byte(`{"Device":0,"Interval":1}` + "\n")) // case-insensitive stdlib match
	f.Add([]byte(`{"device":0,"interval":1,"device":1}`))
	f.Add([]byte(`{"device":0,"interval":1,"class":"aAb"}`))
	f.Add([]byte(`{"device":-1,"interval":1}` + "\n{not json}"))
	f.Add([]byte(` { "device" : 0 , "interval" : 2.5 } `))
	f.Add([]byte(`{"device":0,"interval":1} trailing`))
	f.Add([]byte(`{"device":0,"interval":01}`))
	f.Add([]byte(`{"device":0,"interval":1,"requests":1.5}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))
	f.Fuzz(func(t *testing.T, data []byte) {
		const devices = 4
		run := func(fast bool) (int, []Observation, string) {
			var got []Observation
			n, err := decodeNDJSON(bytes.NewReader(data), devices, 7, func(chunk []Observation) error {
				for _, o := range chunk {
					got = append(got, o)
				}
				return nil
			}, fast)
			msg := ""
			if err != nil {
				msg = err.Error()
			}
			return n, got, msg
		}
		nF, gotF, errF := run(true)
		nS, gotS, errS := run(false)
		if nF != nS || errF != errS {
			t.Fatalf("scanner diverges from stdlib: (%d,%q) vs (%d,%q)", nF, errF, nS, errS)
		}
		if !reflect.DeepEqual(gotF, gotS) {
			t.Fatalf("scanner observations diverge:\n fast: %+v\nstdlib: %+v", gotF, gotS)
		}
	})
}

// TestScannerHandlesWriteAndClassFields spot-checks the new wire fields
// through the public decoder.
func TestScannerHandlesWriteAndClassFields(t *testing.T) {
	in := `{"device":1,"class":"gold","interval":2,"requests":10,"writes":4,"writeChunks":9}` + "\n"
	var got []Observation
	n, err := DecodeNDJSON(strings.NewReader(in), 4, 0, func(chunk []Observation) error {
		got = append(got, chunk...)
		return nil
	})
	if err != nil || n != 1 {
		t.Fatalf("decode: n=%d err=%v", n, err)
	}
	o := got[0]
	if o.Class != "gold" || o.Writes != 4 || o.WriteChunks != 9 || o.Device != 1 {
		t.Fatalf("decoded %+v", o)
	}
	m := o.Metrics(1)
	if m.WriteRate != 2 || m.WriteChunks != 2.25 {
		t.Fatalf("write metrics: rate=%v chunks=%v", m.WriteRate, m.WriteChunks)
	}
}

// TestDecodeNDJSONAllocs bounds the steady-state allocation cost of the
// fast path: amortized over a large batch of plain observations, decoding
// must stay under a tenth of an allocation per line (the stdlib path costs
// over a dozen). The payload is built once; each run re-reads it.
func TestDecodeNDJSONAllocs(t *testing.T) {
	const lines = 1000
	var buf bytes.Buffer
	for i := 0; i < lines; i++ {
		buf.WriteString(`{"device":3,"interval":1.5,"requests":120,"dataReads":140,` +
			`"indexHits":80,"indexMisses":40,"metaHits":90,"metaMisses":30,` +
			`"dataHits":70,"dataMisses":50,"diskBusy":0.42,"diskOps":200,` +
			`"writes":12,"writeChunks":25}` + "\n")
	}
	payload := buf.Bytes()
	rd := bytes.NewReader(payload)
	avg := testing.AllocsPerRun(10, func() {
		rd.Reset(payload)
		n, err := DecodeNDJSON(rd, 4, 0, func([]Observation) error { return nil })
		if err != nil || n != lines {
			t.Fatalf("decode: n=%d err=%v", n, err)
		}
	})
	if perLine := avg / lines; perLine > 0.1 {
		t.Errorf("fast NDJSON decode allocates %.3f allocs/line (%.0f per batch), want <= 0.1", perLine, avg)
	}
}
