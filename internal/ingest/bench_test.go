package ingest

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// BenchmarkTableIngest measures concurrent ingest throughput per stripe
// count. Stripes=1 is the single-lock baseline the striped layouts are
// compared against (the ISSUE's ≥5× bar at 8+ cores); each parallel worker
// ingests batches for a disjoint device subset, the favourable-but-realistic
// case of one monitoring agent per device group.
func BenchmarkTableIngest(b *testing.B) {
	const devices = 64
	const batchSize = 32
	for _, stripes := range []int{1, 8, 0} {
		name := fmt.Sprintf("stripes=%d", stripes)
		if stripes == 0 {
			name = "stripes=auto"
		}
		b.Run(name, func(b *testing.B) {
			tb, err := NewTable(Config{Devices: devices, Stripes: stripes,
				Window: 60, MaxEntries: 128, Procs: 1})
			if err != nil {
				b.Fatal(err)
			}
			now := time.Now()
			var worker atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				w := int(worker.Add(1)) - 1
				batch := make([]Observation, batchSize)
				for i := range batch {
					// Workers write disjoint devices so striping can pay off.
					batch[i] = Observation{
						Device:   (w*batchSize + i) % devices,
						Interval: 1, Requests: 100, DataReads: 120,
						IndexHits: 900, IndexMisses: 100,
						MetaHits: 900, MetaMisses: 100,
						DataHits: 900, DataMisses: 100,
						DiskBusy: 0.5, DiskOps: 100,
					}
				}
				for pb.Next() {
					if err := tb.Ingest(batch, now); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			obs := uint64(b.N) * batchSize
			b.ReportMetric(float64(obs)/b.Elapsed().Seconds(), "obs/s")
		})
	}
}

// BenchmarkDecodeNDJSON measures the streaming decoder alone: pooled
// chunks, strict per-line decoding, validation.
func BenchmarkDecodeNDJSON(b *testing.B) {
	batch := randomBatches(11, 16, 1, 512)[0]
	var buf strings.Builder
	if err := EncodeNDJSON(&buf, batch); err != nil {
		b.Fatal(err)
	}
	body := buf.String()
	b.SetBytes(int64(len(body)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := DecodeNDJSON(strings.NewReader(body), 16, 0, func([]Observation) error { return nil })
		if err != nil || n != len(batch) {
			b.Fatalf("n=%d err=%v", n, err)
		}
	}
}
