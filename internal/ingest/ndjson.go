package ingest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Content types negotiated by the /ingest endpoint.
const (
	// ContentTypeJSON is the original array mode: one IngestRequest
	// envelope, absorbed all-or-nothing.
	ContentTypeJSON = "application/json"
	// ContentTypeNDJSON is the streaming batch mode: one Observation per
	// line, validated and absorbed chunk by chunk.
	ContentTypeNDJSON = "application/x-ndjson"
)

// DefaultChunkSize is the observations-per-chunk granularity of the NDJSON
// streaming decoder: large enough to amortize the per-chunk table pass,
// small enough that a rejected line loses at most one chunk of progress.
const DefaultChunkSize = 256

// maxLineBytes bounds one NDJSON line; a single observation (even with
// generous latency sample arrays) fits comfortably in 1 MiB.
const maxLineBytes = 1 << 20

// LineError locates a decode or validation failure in an NDJSON stream.
// Line is 1-based and counts every physical line, blank ones included.
type LineError struct {
	Line int
	Err  error
}

func (e *LineError) Error() string { return fmt.Sprintf("line %d: %v", e.Line, e.Err) }
func (e *LineError) Unwrap() error { return e.Err }

// chunkPool recycles decode chunks so a sustained NDJSON stream allocates
// observation slices once, not per chunk.
var chunkPool = sync.Pool{
	New: func() any {
		s := make([]Observation, 0, DefaultChunkSize)
		return &s
	},
}

// GetBatch borrows an empty observation slice from the shared pool.
func GetBatch() *[]Observation {
	b := chunkPool.Get().(*[]Observation)
	*b = (*b)[:0]
	return b
}

// PutBatch returns a borrowed slice to the pool.
func PutBatch(b *[]Observation) {
	*b = (*b)[:0]
	chunkPool.Put(b)
}

// DecodeNDJSON reads newline-delimited observations from r, validating each
// line against the deployment size, and emits them in chunks of up to
// chunkSize (0 selects DefaultChunkSize). The chunk slice passed to emit is
// pooled: it is valid only for the duration of the call, and emit must copy
// anything it retains (the state table copies on ingest, so the serving
// path needs no extra copy).
//
// accepted counts observations successfully handed to emit. Blank lines are
// skipped. A malformed or invalid line aborts the stream with a *LineError
// (earlier chunks stay absorbed — streaming is chunk-atomic, not
// batch-atomic); an emit error aborts with that error; a reader error (e.g.
// http.MaxBytesError from a capped body) is returned unwrapped so callers
// keep their size taxonomy.
//
// Each line is parsed by a hand-rolled flat-field scanner (zero allocations
// for the common shape); any line the scanner cannot handle with certainty
// falls back to an encoding/json parse of that line, so the observable
// behavior is byte-for-byte the stdlib's (FuzzNDJSONScannerEquivalence pins
// the two paths against each other).
func DecodeNDJSON(r io.Reader, devices, chunkSize int, emit func([]Observation) error) (accepted int, err error) {
	return decodeNDJSON(r, devices, chunkSize, emit, true)
}

// decodeNDJSON is DecodeNDJSON with the fast scanner optionally disabled —
// the stdlib-only mode is the oracle the equivalence fuzz target compares
// against.
func decodeNDJSON(r io.Reader, devices, chunkSize int, emit func([]Observation) error, fast bool) (accepted int, err error) {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	chunk := GetBatch()
	defer PutBatch(chunk)
	flush := func() error {
		if len(*chunk) == 0 {
			return nil
		}
		if err := emit(*chunk); err != nil {
			return err
		}
		accepted += len(*chunk)
		*chunk = (*chunk)[:0]
		return nil
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxLineBytes)
	line := 0
	// o lives outside the loop: its address escapes into the decoders, so a
	// per-iteration declaration would be one heap allocation per line.
	var o Observation
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		o = Observation{}
		if !fast || !scanObservation(raw, &o) {
			o = Observation{} // discard any partial fast-path state
			dec := json.NewDecoder(bytes.NewReader(raw))
			dec.DisallowUnknownFields()
			if err := dec.Decode(&o); err != nil {
				// A reader error (a capped body, a dropped connection) makes the
				// scanner surface its buffered remainder as a final, truncated
				// token; that token failing to parse is the reader's fault, not
				// the input's — report the reader error so callers keep their
				// taxonomy (http.MaxBytesError → 413).
				if rerr := sc.Err(); rerr != nil {
					return accepted, rerr
				}
				return accepted, &LineError{Line: line, Err: fmt.Errorf("%w: %v", ErrInvalid, err)}
			}
			if dec.More() {
				return accepted, &LineError{Line: line, Err: fmt.Errorf("%w: trailing data after observation", ErrInvalid)}
			}
		}
		if err := o.Validate(devices); err != nil {
			return accepted, &LineError{Line: line, Err: err}
		}
		*chunk = append(*chunk, o)
		if len(*chunk) >= chunkSize {
			if err := flush(); err != nil {
				return accepted, err
			}
		}
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return accepted, &LineError{Line: line + 1,
				Err: fmt.Errorf("%w: line exceeds %d bytes", ErrInvalid, maxLineBytes)}
		}
		return accepted, err
	}
	return accepted, flush()
}

// EncodeNDJSON writes batch in the streaming wire format: one JSON
// observation per line.
func EncodeNDJSON(w io.Writer, batch []Observation) error {
	enc := json.NewEncoder(w)
	for i := range batch {
		if err := enc.Encode(&batch[i]); err != nil {
			return err
		}
	}
	return nil
}
