package ingest

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzNDJSONDecode hammers the streaming decoder with arbitrary byte
// streams and checks its invariants: no panic, deterministic outcomes,
// accepted counts that match what emit actually saw, and a clean round trip
// through EncodeNDJSON for everything that decoded.
func FuzzNDJSONDecode(f *testing.F) {
	f.Add([]byte(`{"device":0,"interval":1,"requests":5}` + "\n"))
	f.Add([]byte(`{"device":1,"interval":0.5}` + "\n" + `{"device":2,"interval":2,"latencies":[0.1,0.2]}` + "\n"))
	f.Add([]byte("\n\n"))
	f.Add([]byte(`{not json}`))
	f.Add([]byte(`{"device":9,"interval":1}`))
	f.Add([]byte(`{"device":0,"interval":1} trailing`))
	f.Add([]byte(`{"device":0,"interval":1,"unknown":true}`))
	f.Add([]byte(strings.Repeat(`{"device":3,"interval":1}`+"\n", 50)))
	f.Fuzz(func(t *testing.T, data []byte) {
		const devices = 4
		run := func() (int, []Observation, error) {
			var got []Observation
			n, err := DecodeNDJSON(bytes.NewReader(data), devices, 7, func(chunk []Observation) error {
				got = append(got, chunk...)
				return nil
			})
			return n, got, err
		}
		n1, got1, err1 := run()
		n2, _, err2 := run()
		if n1 != n2 || (err1 == nil) != (err2 == nil) {
			t.Fatalf("non-deterministic decode: (%d,%v) vs (%d,%v)", n1, err1, n2, err2)
		}
		if n1 != len(got1) {
			t.Fatalf("accepted %d but emit saw %d observations", n1, len(got1))
		}
		for i, o := range got1 {
			if err := o.Validate(devices); err != nil {
				t.Fatalf("emitted observation %d fails validation: %v", i, err)
			}
		}
		if len(got1) == 0 {
			return
		}
		// Round trip: re-encoding what decoded and decoding again must be
		// lossless and error-free.
		var buf bytes.Buffer
		if err := EncodeNDJSON(&buf, got1); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		var again []Observation
		n3, err := DecodeNDJSON(&buf, devices, 7, func(chunk []Observation) error {
			again = append(again, chunk...)
			return nil
		})
		if err != nil || n3 != len(got1) {
			t.Fatalf("round trip: n=%d err=%v, want %d,nil", n3, err, len(got1))
		}
		for i := range again {
			if again[i].Device != got1[i].Device || again[i].Requests != got1[i].Requests ||
				again[i].Interval != got1[i].Interval {
				t.Fatalf("round trip mismatch at %d: %+v vs %+v", i, again[i], got1[i])
			}
		}
	})
}
