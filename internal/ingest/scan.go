package ingest

import "strconv"

// Hand-rolled NDJSON line scanner. The stdlib path costs a decoder, a
// reader and reflection machinery per line; this scanner walks the flat
// Observation object once with zero allocations for the common shape
// (known ASCII keys, plain numbers, no escapes). It is deliberately
// conservative: the moment a line deviates from that shape — an unknown or
// duplicated key, an escape sequence, non-ASCII text, a number needing
// arbitrary-precision rounding, null, nesting, trailing data — it reports
// failure and the caller re-parses the line through encoding/json, so
// accept/reject behavior and error text are byte-for-byte the stdlib's
// (pinned by FuzzNDJSONScannerEquivalence).

// Field indices for the duplicate-key bitmask, one bit per JSON key.
const (
	fDevice = iota
	fClass
	fInterval
	fRequests
	fDataReads
	fIndexHits
	fIndexMisses
	fMetaHits
	fMetaMisses
	fDataHits
	fDataMisses
	fDiskBusy
	fDiskOps
	fWrites
	fWriteChunks
	fLatencies
	fDiskIndexLat
	fDiskMetaLat
	fDiskDataLat
	fUnknown
)

// fieldIndex maps a raw key to its field constant; fUnknown punts to the
// stdlib (which also owns case-insensitive matching of unusual spellings).
func fieldIndex(key []byte) int {
	switch string(key) { // compiled to an alloc-free comparison
	case "device":
		return fDevice
	case "class":
		return fClass
	case "interval":
		return fInterval
	case "requests":
		return fRequests
	case "dataReads":
		return fDataReads
	case "indexHits":
		return fIndexHits
	case "indexMisses":
		return fIndexMisses
	case "metaHits":
		return fMetaHits
	case "metaMisses":
		return fMetaMisses
	case "dataHits":
		return fDataHits
	case "dataMisses":
		return fDataMisses
	case "diskBusy":
		return fDiskBusy
	case "diskOps":
		return fDiskOps
	case "writes":
		return fWrites
	case "writeChunks":
		return fWriteChunks
	case "latencies":
		return fLatencies
	case "diskIndexLat":
		return fDiskIndexLat
	case "diskMetaLat":
		return fDiskMetaLat
	case "diskDataLat":
		return fDiskDataLat
	}
	return fUnknown
}

// lineScan is the cursor over one raw NDJSON line.
type lineScan struct {
	buf []byte
	pos int
}

func (s *lineScan) ws() {
	for s.pos < len(s.buf) {
		switch s.buf[s.pos] {
		case ' ', '\t', '\r', '\n':
			s.pos++
		default:
			return
		}
	}
}

func (s *lineScan) consume(c byte) bool {
	if s.pos < len(s.buf) && s.buf[s.pos] == c {
		s.pos++
		return true
	}
	return false
}

// str reads a plain string: no backslash escapes, no control bytes, no
// non-ASCII (the stdlib replaces invalid UTF-8, so anything >= 0x80 punts).
func (s *lineScan) str() ([]byte, bool) {
	if !s.consume('"') {
		return nil, false
	}
	start := s.pos
	for s.pos < len(s.buf) {
		switch c := s.buf[s.pos]; {
		case c == '"':
			seg := s.buf[start:s.pos]
			s.pos++
			return seg, true
		case c == '\\' || c < 0x20 || c >= 0x80:
			return nil, false
		default:
			s.pos++
		}
	}
	return nil, false
}

// digits consumes a JSON integer part (no leading zeros) and reports the
// consumed range.
func (s *lineScan) digits() (start, end int, ok bool) {
	start = s.pos
	for s.pos < len(s.buf) && s.buf[s.pos] >= '0' && s.buf[s.pos] <= '9' {
		s.pos++
	}
	end = s.pos
	if end == start {
		return 0, 0, false
	}
	if s.buf[start] == '0' && end-start > 1 {
		return 0, 0, false // leading zero: invalid JSON, stdlib owns the error
	}
	return start, end, true
}

// uintVal parses an unsigned decimal field. Fractions, exponents and signs
// are left for the outer structure (or the stdlib) to reject.
func (s *lineScan) uintVal() (uint64, bool) {
	start, end, ok := s.digits()
	if !ok {
		return 0, false
	}
	var v uint64
	for _, c := range s.buf[start:end] {
		d := uint64(c - '0')
		if v > (1<<64-1-d)/10 {
			return 0, false // overflow: stdlib reports the range error
		}
		v = v*10 + d
	}
	return v, true
}

func (s *lineScan) intVal() (int, bool) {
	neg := s.consume('-')
	u, ok := s.uintVal()
	if !ok || u > 1<<62 {
		return 0, false
	}
	if neg {
		return -int(u), true
	}
	return int(u), true
}

// pow10 holds the exactly-representable powers of ten for the fast
// decimal-to-binary path.
var pow10 = [...]float64{1e0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9,
	1e10, 1e11, 1e12, 1e13, 1e14, 1e15, 1e16, 1e17, 1e18, 1e19, 1e20, 1e21, 1e22}

// floatVal parses a JSON number into a float64. Values whose mantissa fits
// 15 digits and whose scale stays within ±22 are converted exactly (one
// correctly-rounded multiply or divide of exact operands); anything wider
// takes one strconv.ParseFloat on the slice, matching the stdlib's rounding
// bit for bit in both cases.
func (s *lineScan) floatVal() (float64, bool) {
	start := s.pos
	neg := s.consume('-')
	mStart, mEnd, ok := s.digits()
	if !ok {
		return 0, false
	}
	fracDigits := 0
	if s.consume('.') {
		fs := s.pos
		for s.pos < len(s.buf) && s.buf[s.pos] >= '0' && s.buf[s.pos] <= '9' {
			s.pos++
		}
		fracDigits = s.pos - fs
		if fracDigits == 0 {
			return 0, false // "1." is invalid JSON
		}
	}
	exp := 0
	if s.pos < len(s.buf) && (s.buf[s.pos] == 'e' || s.buf[s.pos] == 'E') {
		s.pos++
		expNeg := false
		if s.pos < len(s.buf) && (s.buf[s.pos] == '+' || s.buf[s.pos] == '-') {
			expNeg = s.buf[s.pos] == '-'
			s.pos++
		}
		es := s.pos
		for s.pos < len(s.buf) && s.buf[s.pos] >= '0' && s.buf[s.pos] <= '9' {
			s.pos++
		}
		if s.pos == es {
			return 0, false // "1e" is invalid JSON
		}
		if s.pos-es > 8 {
			return s.slowFloat(start) // huge exponent: range semantics to strconv
		}
		for _, c := range s.buf[es:s.pos] {
			exp = exp*10 + int(c-'0')
		}
		if expNeg {
			exp = -exp
		}
	}
	// Fast exact path: accumulate the mantissa digits (integer + fraction)
	// and scale by a power of ten that is itself exact.
	nDigits := (mEnd - mStart) + fracDigits
	e10 := exp - fracDigits
	if nDigits > 15 || e10 < -22 || e10 > 22 {
		return s.slowFloat(start)
	}
	var m uint64
	for _, c := range s.buf[mStart:mEnd] {
		m = m*10 + uint64(c-'0')
	}
	if fracDigits > 0 {
		for _, c := range s.buf[mEnd+1 : mEnd+1+fracDigits] {
			m = m*10 + uint64(c-'0')
		}
	}
	v := float64(m)
	if e10 > 0 {
		v *= pow10[e10]
	} else if e10 < 0 {
		v /= pow10[-e10]
	}
	if neg {
		v = -v
	}
	return v, true
}

// slowFloat defers one already-syntax-checked number to strconv (a single
// small allocation for the string conversion).
func (s *lineScan) slowFloat(start int) (float64, bool) {
	v, err := strconv.ParseFloat(string(s.buf[start:s.pos]), 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// floatArray parses a flat array of JSON numbers, appending into dst
// (reused across lines by the caller when possible).
func (s *lineScan) floatArray(dst []float64) ([]float64, bool) {
	if !s.consume('[') {
		return nil, false
	}
	s.ws()
	if s.consume(']') {
		if dst == nil {
			dst = make([]float64, 0)
		}
		return dst, true // `[]` decodes to an empty, non-nil slice
	}
	for {
		s.ws()
		v, ok := s.floatVal()
		if !ok {
			return nil, false
		}
		dst = append(dst, v)
		s.ws()
		if s.consume(',') {
			continue
		}
		if s.consume(']') {
			return dst, true
		}
		return nil, false
	}
}

// scanObservation attempts the fast parse of one trimmed NDJSON line into
// o. It reports false — leaving o in an undefined partial state — whenever
// the line needs the stdlib's full semantics; it reports true only when the
// resulting Observation is exactly what encoding/json would have produced.
func scanObservation(raw []byte, o *Observation) bool {
	s := lineScan{buf: raw}
	if !s.consume('{') {
		return false
	}
	s.ws()
	if s.consume('}') {
		s.ws()
		return s.pos == len(s.buf)
	}
	var seen uint32
	for {
		key, ok := s.str()
		if !ok {
			return false
		}
		f := fieldIndex(key)
		if f == fUnknown || seen&(1<<f) != 0 {
			return false // unknown or duplicate key: stdlib semantics
		}
		seen |= 1 << f
		s.ws()
		if !s.consume(':') {
			return false
		}
		s.ws()
		switch f {
		case fDevice:
			if o.Device, ok = s.intVal(); !ok {
				return false
			}
		case fClass:
			var seg []byte
			if seg, ok = s.str(); !ok {
				return false
			}
			o.Class = string(seg)
		case fInterval:
			if o.Interval, ok = s.floatVal(); !ok {
				return false
			}
		case fDiskBusy:
			if o.DiskBusy, ok = s.floatVal(); !ok {
				return false
			}
		case fLatencies:
			if o.Latencies, ok = s.floatArray(o.Latencies[:0]); !ok {
				return false
			}
		case fDiskIndexLat:
			if o.DiskIndexLat, ok = s.floatArray(o.DiskIndexLat[:0]); !ok {
				return false
			}
		case fDiskMetaLat:
			if o.DiskMetaLat, ok = s.floatArray(o.DiskMetaLat[:0]); !ok {
				return false
			}
		case fDiskDataLat:
			if o.DiskDataLat, ok = s.floatArray(o.DiskDataLat[:0]); !ok {
				return false
			}
		default:
			var u uint64
			if u, ok = s.uintVal(); !ok {
				return false
			}
			switch f {
			case fRequests:
				o.Requests = u
			case fDataReads:
				o.DataReads = u
			case fIndexHits:
				o.IndexHits = u
			case fIndexMisses:
				o.IndexMisses = u
			case fMetaHits:
				o.MetaHits = u
			case fMetaMisses:
				o.MetaMisses = u
			case fDataHits:
				o.DataHits = u
			case fDataMisses:
				o.DataMisses = u
			case fDiskOps:
				o.DiskOps = u
			case fWrites:
				o.Writes = u
			case fWriteChunks:
				o.WriteChunks = u
			}
		}
		s.ws()
		if s.consume(',') {
			s.ws()
			continue
		}
		if s.consume('}') {
			s.ws()
			return s.pos == len(s.buf) // trailing bytes: stdlib reports them
		}
		return false
	}
}
