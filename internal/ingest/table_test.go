package ingest

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"
)

func testTableConfig(devices, stripes int) Config {
	return Config{Devices: devices, Stripes: stripes, Window: 60, MaxEntries: 32, Procs: 2}
}

// randomObservation builds a valid observation for a random device.
func randomObservation(rng *rand.Rand, devices int) Observation {
	o := Observation{
		Device:      rng.Intn(devices),
		Interval:    0.5 + rng.Float64(),
		Requests:    uint64(1 + rng.Intn(500)),
		DataReads:   uint64(1 + rng.Intn(700)),
		IndexHits:   uint64(rng.Intn(1000)),
		IndexMisses: uint64(rng.Intn(100)),
		MetaHits:    uint64(rng.Intn(1000)),
		MetaMisses:  uint64(rng.Intn(100)),
		DataHits:    uint64(rng.Intn(1000)),
		DataMisses:  uint64(rng.Intn(100)),
		DiskBusy:    rng.Float64() * 0.5,
		DiskOps:     uint64(1 + rng.Intn(300)),
	}
	if rng.Intn(3) == 0 {
		for i := 0; i < 4; i++ {
			o.Latencies = append(o.Latencies, rng.Float64()*0.2)
		}
	}
	return o
}

func randomBatches(seed int64, devices, batches, batchSize int) [][]Observation {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]Observation, batches)
	for i := range out {
		batch := make([]Observation, batchSize)
		for j := range batch {
			batch[j] = randomObservation(rng, devices)
		}
		out[i] = batch
	}
	return out
}

// quantizedBatches is randomBatches restricted to dyadic floats (exact
// binary fractions), so aggregate sums are order-insensitive bit for bit.
func quantizedBatches(seed int64, devices, batches, batchSize int) [][]Observation {
	out := randomBatches(seed, devices, batches, batchSize)
	rng := rand.New(rand.NewSource(seed + 1))
	for _, b := range out {
		for j := range b {
			b[j].Interval = []float64{0.5, 1, 2}[rng.Intn(3)]
			b[j].DiskBusy = float64(rng.Intn(64)) / 64
			for k := range b[j].Latencies {
				b[j].Latencies[k] = float64(1+rng.Intn(128)) / 1024
			}
		}
	}
	return out
}

// TestStripedEquivalence pins the tentpole invariant: for any stripe count,
// a quiesced table is state-for-state identical to the single-lock layout —
// same snapshots, same per-device rates, same counters, same merged latency
// histogram.
func TestStripedEquivalence(t *testing.T) {
	const devices = 13 // intentionally not a multiple of any stripe count
	batches := randomBatches(42, devices, 50, 16)
	now := time.Unix(1700000000, 0)

	single, err := NewTable(testTableConfig(devices, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, stripes := range []int{2, 3, 4, 8, 13, 64} {
		striped, err := NewTable(testTableConfig(devices, stripes))
		if err != nil {
			t.Fatal(err)
		}
		if stripes <= devices && striped.Stripes() != stripes {
			t.Fatalf("stripes = %d, want %d", striped.Stripes(), stripes)
		}
		if stripes > devices && striped.Stripes() != devices {
			t.Fatalf("stripes = %d, want clamp to %d devices", striped.Stripes(), devices)
		}
		for i, b := range batches {
			ts := now.Add(time.Duration(i) * time.Second)
			if stripes == 2 { // feed the reference once
				if err := single.Ingest(b, ts); err != nil {
					t.Fatal(err)
				}
			}
			if err := striped.Ingest(b, ts); err != nil {
				t.Fatal(err)
			}
		}
		if got, want := striped.Snapshot(), single.Snapshot(); !reflect.DeepEqual(got, want) {
			t.Errorf("stripes=%d: snapshot diverges from single-lock\n got %+v\nwant %+v", stripes, got, want)
		}
		if got, want := striped.DeviceRates(), single.DeviceRates(); !reflect.DeepEqual(got, want) {
			t.Errorf("stripes=%d: device rates diverge\n got %v\nwant %v", stripes, got, want)
		}
		gi, gr := striped.Stats()
		wi, wr := single.Stats()
		if gi != wi || gr != wr {
			t.Errorf("stripes=%d: stats (%d,%d), want (%d,%d)", stripes, gi, gr, wi, wr)
		}
		devs := []int{0, 5, 12, 7}
		gms, gcov, err := striped.SnapshotDevices(devs)
		if err != nil {
			t.Fatal(err)
		}
		wms, wcov, err := single.SnapshotDevices(devs)
		if err != nil {
			t.Fatal(err)
		}
		if gcov != wcov || !reflect.DeepEqual(gms, wms) {
			t.Errorf("stripes=%d: device subset snapshot diverges", stripes)
		}
		gl, wl := striped.ObservedLatency(), single.ObservedLatency()
		if (gl == nil) != (wl == nil) {
			t.Fatalf("stripes=%d: latency histogram presence diverges", stripes)
		}
		if gl != nil {
			for _, q := range []float64{0.5, 0.95, 0.99} {
				if gl.Quantile(q) != wl.Quantile(q) {
					t.Errorf("stripes=%d: latency q%.0f %v != %v", stripes, q*100, gl.Quantile(q), wl.Quantile(q))
				}
			}
		}
		gt, _ := striped.LastIngest()
		wt, _ := single.LastIngest()
		if !gt.Equal(wt) {
			t.Errorf("stripes=%d: lastIngest %v != %v", stripes, gt, wt)
		}
	}
}

// TestTableRejectsInvalidBatchWhole pins the all-or-nothing contract: one
// invalid observation rejects the batch and leaves every stripe untouched.
func TestTableRejectsInvalidBatchWhole(t *testing.T) {
	tb, err := NewTable(testTableConfig(8, 4))
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	bad := []Observation{
		{Device: 0, Interval: 1, Requests: 10},
		{Device: 99, Interval: 1, Requests: 10}, // out of range
	}
	if err := tb.Ingest(bad, now); !errors.Is(err, ErrInvalid) {
		t.Fatalf("invalid batch: err = %v, want ErrInvalid", err)
	}
	if err := tb.Ingest(nil, now); !errors.Is(err, ErrInvalid) {
		t.Fatalf("empty batch: err = %v, want ErrInvalid", err)
	}
	if ingested, reporting := tb.Stats(); ingested != 0 || reporting != 0 {
		t.Fatalf("rejected batches left state: ingested=%d reporting=%d", ingested, reporting)
	}
	if rev := tb.Revision(); rev != 0 {
		t.Fatalf("rejected batches advanced revision to %d", rev)
	}
}

// TestTableWindowEviction checks the sliding window drops observations that
// fall outside the span or entry bound, per stripe.
func TestTableWindowEviction(t *testing.T) {
	cfg := Config{Devices: 4, Stripes: 2, Window: 10, MaxEntries: 3, Procs: 1}
	tb, err := NewTable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	// 5 observations of 4s each on device 1: the 10s window keeps the last
	// three at most, and MaxEntries=3 also binds.
	for i := 0; i < 5; i++ {
		o := Observation{Device: 1, Interval: 4, Requests: uint64(100 * (i + 1))}
		if err := tb.Ingest([]Observation{o}, now); err != nil {
			t.Fatal(err)
		}
	}
	ms := tb.Snapshot()
	if len(ms) != 1 {
		t.Fatalf("reporting devices = %d, want 1", len(ms))
	}
	// Window keeps entries while span-minus-oldest < 10: two 4s entries
	// (span 8) survive; a third pushes span-oldest to 8 >= 10? No: 12-4=8 <
	// 10 keeps three, 16-4=12 >= 10 evicts. So the last three remain:
	// (300+400+500)/12.
	want := float64(300+400+500) / 12
	if got := ms[0].Rate; got != want {
		t.Fatalf("windowed rate = %v, want %v", got, want)
	}
}

// TestSnapshotDevicesRange checks the subset path rejects out-of-range ids.
func TestSnapshotDevicesRange(t *testing.T) {
	tb, err := NewTable(testTableConfig(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := tb.SnapshotDevices([]int{0, 4}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("out-of-range subset: err = %v, want ErrInvalid", err)
	}
}

// TestStripedContention is the -race pin of the tentpole: many goroutines
// ingesting overlapping device sets while snapshots, subset snapshots and
// stats run concurrently. The race detector checks the locking; afterwards
// the quiesced table must hold exactly the union of everything ingested,
// matching a single-lock table fed the same batches sequentially.
func TestStripedContention(t *testing.T) {
	const (
		devices   = 16
		workers   = 8
		perWorker = 40
		batchSize = 8
	)
	// No eviction (huge window and entry bound) so the final state is the
	// full union of every batch regardless of interleaving, and dyadic
	// float values (intervals and busy times that are exact binary
	// fractions) so summing them in any order gives bit-identical
	// aggregates.
	cfg := Config{Devices: devices, Window: 1 << 30, MaxEntries: 1 << 20, Procs: 2}
	cfg.Stripes = 8
	striped, err := NewTable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Stripes = 1
	single, err := NewTable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1700000000, 0)

	// Worker w ingests batches [w*perWorker, (w+1)*perWorker) concurrently
	// into the striped table.
	all := quantizedBatches(7, devices, workers*perWorker, batchSize)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent readers exercising every snapshot path during the storm.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				striped.Snapshot()
				striped.SnapshotDevices([]int{0, 3, 9, 15}) //nolint:errcheck
				striped.Stats()
				striped.DeviceRates()
				striped.ObservedLatency()
				striped.Revision()
			}
		}()
	}
	var werr sync.Map
	var iw sync.WaitGroup
	for w := 0; w < workers; w++ {
		iw.Add(1)
		go func(w int) {
			defer iw.Done()
			for i := 0; i < perWorker; i++ {
				b := all[w*perWorker+i]
				if err := striped.Ingest(b, now); err != nil {
					werr.Store(fmt.Sprintf("worker %d batch %d", w, i), err)
				}
			}
		}(w)
	}
	iw.Wait()
	close(stop)
	wg.Wait()
	werr.Range(func(k, v any) bool {
		t.Errorf("%s: %v", k, v)
		return true
	})

	// Sequential reference: same batches, same timestamp, single lock.
	// Nothing evicts and every aggregate is an order-insensitive exact sum,
	// so the two tables must agree bit for bit.
	for _, b := range all {
		if err := single.Ingest(b, now); err != nil {
			t.Fatal(err)
		}
	}
	gi, gr := striped.Stats()
	wi, wr := single.Stats()
	if gi != wi || gr != wr {
		t.Errorf("post-storm stats (%d,%d), want (%d,%d)", gi, gr, wi, wr)
	}
	if got := striped.Revision(); got != uint64(workers*perWorker) {
		t.Errorf("revision = %d, want %d", got, workers*perWorker)
	}
	gm, wm := striped.Snapshot(), single.Snapshot()
	if len(gm) != len(wm) {
		t.Fatalf("reporting devices %d != %d", len(gm), len(wm))
	}
	for d := range gm {
		if gm[d] != wm[d] {
			t.Errorf("device slot %d: %+v != %+v", d, gm[d], wm[d])
		}
	}
}
