package ingest

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cosmodel/internal/core"
	"cosmodel/internal/stats"
)

// Config sizes a state Table.
type Config struct {
	// Devices is the number of storage devices reporting observations.
	Devices int
	// Stripes is the lock-stripe count: device d lands in stripe d mod
	// Stripes. 0 picks an automatic count (≈2× GOMAXPROCS, capped at
	// Devices); 1 is the single-lock layout every striped configuration
	// must be observably equivalent to.
	Stripes int
	// Window is the sliding-window span in seconds of observation coverage.
	Window float64
	// MaxEntries bounds the retained observations per device.
	MaxEntries int
	// Procs is the process count per device used when deriving metrics.
	Procs int
}

func (c Config) validate() error {
	switch {
	case c.Devices < 1:
		return fmt.Errorf("%w: need at least one device", ErrInvalid)
	case c.Stripes < 0:
		return fmt.Errorf("%w: stripe count %d negative", ErrInvalid, c.Stripes)
	case c.Window <= 0:
		return fmt.Errorf("%w: window must be positive", ErrInvalid)
	case c.MaxEntries < 1:
		return fmt.Errorf("%w: need at least one retained entry", ErrInvalid)
	case c.Procs < 1:
		return fmt.Errorf("%w: need at least one process per device", ErrInvalid)
	}
	return nil
}

// DefaultStripes returns the automatic stripe count for a deployment size:
// enough stripes that GOMAXPROCS concurrent ingesters rarely collide, never
// more than there are devices (extra stripes would sit empty).
func DefaultStripes(devices int) int {
	s := 2 * runtime.GOMAXPROCS(0)
	if s > devices {
		s = devices
	}
	if s < 1 {
		s = 1
	}
	return s
}

// stripe is one lock domain of the table. The padding keeps hot stripes on
// separate cache lines so uncontended stripes don't false-share.
type stripe struct {
	mu         sync.Mutex
	windows    []deviceWindow // local index i holds device i·Stripes + s
	lastIngest time.Time
	_          [64]byte
}

// Table is the striped ingest state: every device's sliding window plus
// ingest bookkeeping, partitioned into independently locked stripes. All
// methods are safe for concurrent use. A batch is validated and its
// histograms built before any lock is taken, and stripes are updated one at
// a time in index order, so two batches for disjoint stripe sets proceed
// fully in parallel.
//
// Concurrency note: a batch spanning multiple stripes is applied stripe by
// stripe, so a snapshot racing an ingest can observe some stripes updated
// and others not yet. Each device's window is always internally consistent,
// and the revision counter advances only after the whole batch landed, so
// memoized snapshots self-heal on the next lookup. Quiesced (the test and
// equivalence condition), the table is state-for-state identical to the
// single-lock layout.
type Table struct {
	cfg      Config
	nstripes int
	stripes  []stripe
	revision atomic.Uint64 // accepted batches; snapshot memo key
	ingested atomic.Uint64 // accepted observations
}

// NewTable builds a striped table; Config.Stripes 0 selects DefaultStripes.
func NewTable(cfg Config) (*Table, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := cfg.Stripes
	if n == 0 {
		n = DefaultStripes(cfg.Devices)
	}
	if n > cfg.Devices {
		n = cfg.Devices
	}
	t := &Table{cfg: cfg, nstripes: n, stripes: make([]stripe, n)}
	for s := range t.stripes {
		// Stripe s owns devices s, s+n, s+2n, …
		t.stripes[s].windows = make([]deviceWindow, (cfg.Devices-s+n-1)/n)
	}
	return t, nil
}

// Stripes returns the effective stripe count.
func (t *Table) Stripes() int { return t.nstripes }

// Devices returns the configured device count.
func (t *Table) Devices() int { return t.cfg.Devices }

// Ingest validates and absorbs a batch of observations stamped at now. The
// batch is all-or-nothing: a single invalid observation rejects the whole
// batch so partial state never depends on payload order.
func (t *Table) Ingest(batch []Observation, now time.Time) error {
	if len(batch) == 0 {
		return fmt.Errorf("%w: empty observation batch", ErrInvalid)
	}
	for _, o := range batch {
		if err := o.Validate(t.cfg.Devices); err != nil {
			return err
		}
	}
	// Build entries (including latency histograms) outside any lock.
	byStripe := make([][]windowEntry, t.nstripes)
	for _, o := range batch {
		e := windowEntry{obs: o}
		if len(o.Latencies) > 0 {
			e.lat = stats.NewLatencyHistogram()
			for _, l := range o.Latencies {
				e.lat.Observe(l)
			}
			e.obs.Latencies = nil // retained as a histogram, not raw samples
		}
		// Raw disk samples feed the calibration controller, not the
		// sliding windows; don't retain them here.
		e.obs.DiskIndexLat, e.obs.DiskMetaLat, e.obs.DiskDataLat = nil, nil, nil
		s := o.Device % t.nstripes
		byStripe[s] = append(byStripe[s], e)
	}
	for s := range byStripe {
		if len(byStripe[s]) == 0 {
			continue
		}
		st := &t.stripes[s]
		st.mu.Lock()
		for _, e := range byStripe[s] {
			st.windows[e.obs.Device/t.nstripes].add(e, t.cfg.Window, t.cfg.MaxEntries)
		}
		if now.After(st.lastIngest) {
			st.lastIngest = now
		}
		st.mu.Unlock()
	}
	t.ingested.Add(uint64(len(batch)))
	t.revision.Add(1)
	return nil
}

// Revision returns the accepted-batch revision — the memo key for derived
// snapshots (it advances only after a batch fully landed).
func (t *Table) Revision() uint64 { return t.revision.Load() }

// Snapshot derives the current per-device online metrics in device order.
// Idle devices are omitted (they contribute nothing to the system mixture);
// an empty result means no device has observations yet.
func (t *Table) Snapshot() []core.OnlineMetrics {
	type devMetric struct {
		m  core.OnlineMetrics
		ok bool
	}
	tmp := make([]devMetric, t.cfg.Devices)
	for s := range t.stripes {
		st := &t.stripes[s]
		st.mu.Lock()
		for li := range st.windows {
			d := li*t.nstripes + s
			tmp[d].m, tmp[d].ok = st.windows[li].metrics(t.cfg.Procs)
		}
		st.mu.Unlock()
	}
	var out []core.OnlineMetrics
	for d := range tmp {
		if tmp[d].ok {
			out = append(out, tmp[d].m)
		}
	}
	return out
}

// SnapshotDevices derives the current online metrics of a device subset —
// the shard-local slice of the cluster mixture — in the order given. Idle
// devices in the subset are skipped; covered counts the subset devices that
// contributed an operating point.
func (t *Table) SnapshotDevices(devs []int) (ms []core.OnlineMetrics, covered int, err error) {
	for _, d := range devs {
		if d < 0 || d >= t.cfg.Devices {
			return nil, 0, fmt.Errorf("%w: device %d outside [0,%d)", ErrInvalid, d, t.cfg.Devices)
		}
	}
	for _, d := range devs {
		st := &t.stripes[d%t.nstripes]
		st.mu.Lock()
		m, ok := st.windows[d/t.nstripes].metrics(t.cfg.Procs)
		st.mu.Unlock()
		if ok {
			ms = append(ms, m)
			covered++
		}
	}
	return ms, covered, nil
}

// DeviceRates returns every device's current windowed request rate (0 for
// idle devices) — the state a restarted router seeds its rate tracker from.
func (t *Table) DeviceRates() []float64 {
	out := make([]float64, t.cfg.Devices)
	for s := range t.stripes {
		st := &t.stripes[s]
		st.mu.Lock()
		for li := range st.windows {
			if m, ok := st.windows[li].metrics(t.cfg.Procs); ok {
				out[li*t.nstripes+s] = m.Rate
			}
		}
		st.mu.Unlock()
	}
	return out
}

// ObservedLatency merges the windowed latency histograms of all devices
// (nil when no latencies were ingested).
func (t *Table) ObservedLatency() *stats.Histogram {
	var merged *stats.Histogram
	for s := range t.stripes {
		st := &t.stripes[s]
		st.mu.Lock()
		for li := range st.windows {
			for _, e := range st.windows[li].entries {
				if e.lat == nil {
					continue
				}
				if merged == nil {
					merged = stats.NewLatencyHistogram()
				}
				// Layouts always match (both NewLatencyHistogram).
				merged.Merge(e.lat) //nolint:errcheck
			}
		}
		st.mu.Unlock()
	}
	return merged
}

// LastIngest returns the newest accepted-ingest timestamp across stripes,
// and whether any ingest happened at all.
func (t *Table) LastIngest() (time.Time, bool) {
	var last time.Time
	for s := range t.stripes {
		st := &t.stripes[s]
		st.mu.Lock()
		if st.lastIngest.After(last) {
			last = st.lastIngest
		}
		st.mu.Unlock()
	}
	return last, !last.IsZero()
}

// Stats returns the ingest counters: total accepted observations and the
// number of devices currently reporting an operating point.
func (t *Table) Stats() (ingested uint64, reporting int) {
	for s := range t.stripes {
		st := &t.stripes[s]
		st.mu.Lock()
		for li := range st.windows {
			if _, ok := st.windows[li].metrics(t.cfg.Procs); ok {
				reporting++
			}
		}
		st.mu.Unlock()
	}
	return t.ingested.Load(), reporting
}
