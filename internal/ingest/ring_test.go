package ingest

import (
	"sync"
	"testing"
)

func TestRingOrderAndCounters(t *testing.T) {
	r := NewRing[int](3)
	for i := 1; i <= 3; i++ {
		if !r.TryPush(i) {
			t.Fatalf("push %d refused below capacity", i)
		}
	}
	if r.TryPush(4) {
		t.Fatal("push accepted on a full ring")
	}
	if got := r.Dropped(); got != 1 {
		t.Fatalf("dropped = %d, want 1", got)
	}
	if got := r.Len(); got != 3 {
		t.Fatalf("len = %d, want 3", got)
	}
	for i := 1; i <= 3; i++ {
		v, ok := r.Pop()
		if !ok || v != i {
			t.Fatalf("pop = (%d,%v), want (%d,true)", v, ok, i)
		}
	}
	// Freed capacity accepts again; Close drains then reports exhaustion.
	if !r.TryPush(9) {
		t.Fatal("push refused after drain")
	}
	r.Close()
	if r.TryPush(10) {
		t.Fatal("push accepted after Close")
	}
	if v, ok := r.Pop(); !ok || v != 9 {
		t.Fatalf("post-close drain pop = (%d,%v), want (9,true)", v, ok)
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("pop reported ok on a closed empty ring")
	}
	if got := r.Pushed(); got != 4 {
		t.Fatalf("pushed = %d, want 4", got)
	}
	if got := r.Popped(); got != 4 {
		t.Fatalf("popped = %d, want 4", got)
	}
	if got := r.Dropped(); got != 2 {
		t.Fatalf("dropped = %d, want 2", got)
	}
}

// TestRingPopAll pins the coalesced-drain contract: PopAll empties the ring
// in one call preserving FIFO order, reuses the caller's buffer, blocks for
// at least one element, and distinguishes closed-with-backlog (ok=true)
// from closed-and-empty (ok=false).
func TestRingPopAll(t *testing.T) {
	r := NewRing[int](8)
	for i := 1; i <= 5; i++ {
		r.TryPush(i)
	}
	buf := make([]int, 0, 8)
	out, ok := r.PopAll(buf)
	if !ok {
		t.Fatal("PopAll reported closed on an open ring")
	}
	if len(out) != 5 {
		t.Fatalf("PopAll drained %d, want 5", len(out))
	}
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("out[%d] = %d, want %d (FIFO order)", i, v, i+1)
		}
	}
	if &out[0] != &buf[:1][0] {
		t.Fatal("PopAll did not reuse the caller's buffer")
	}
	if got := r.Popped(); got != 5 {
		t.Fatalf("popped = %d, want 5", got)
	}

	// Closed with a backlog: that drain still succeeds; only closed AND
	// empty reports exhaustion.
	r.TryPush(6)
	r.Close()
	if out, ok = r.PopAll(out[:0]); !ok || len(out) != 1 || out[0] != 6 {
		t.Fatalf("post-close drain = (%v,%v), want ([6],true)", out, ok)
	}
	if out, ok = r.PopAll(out[:0]); ok || len(out) != 0 {
		t.Fatalf("closed empty ring = (%v,%v), want ([],false)", out, ok)
	}

	// A blocked PopAll wakes on push and returns everything available.
	r2 := NewRing[int](4)
	got := make(chan []int)
	go func() {
		v, _ := r2.PopAll(nil)
		got <- v
	}()
	r2.TryPush(42)
	if v := <-got; len(v) == 0 || v[0] != 42 {
		t.Fatalf("blocked PopAll woke with %v", v)
	}
	r2.Close()
}

// TestRingConcurrentPopAll is the coalesced-drain version of the accounting
// test: many producers race TryPush against one PopAll consumer under -race,
// and pushed + dropped must equal attempts — the drop counters never
// under-count even when whole backlogs are drained in one critical section.
func TestRingConcurrentPopAll(t *testing.T) {
	const (
		producers = 8
		perProd   = 2000
	)
	r := NewRing[int](64)
	seen := make(map[int]int)
	done := make(chan struct{})
	go func() {
		defer close(done)
		var buf []int
		for {
			var ok bool
			buf, ok = r.PopAll(buf[:0])
			for _, v := range buf {
				seen[v]++
			}
			if !ok {
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				r.TryPush(p*perProd + i)
			}
		}(p)
	}
	wg.Wait()
	r.Close()
	<-done
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %d delivered %d times", v, n)
		}
	}
	if total := r.Pushed() + r.Dropped(); total != producers*perProd {
		t.Fatalf("pushed %d + dropped %d = %d attempts, want %d",
			r.Pushed(), r.Dropped(), total, producers*perProd)
	}
	if uint64(len(seen)) != r.Popped() || r.Popped() != r.Pushed() {
		t.Fatalf("delivered %d, popped %d, pushed %d: must all agree",
			len(seen), r.Popped(), r.Pushed())
	}
}

// TestRingConcurrent hammers the ring from many producers with one consumer
// under -race: everything pushed is popped exactly once, and accepted plus
// dropped accounts for every attempt — no silent loss.
func TestRingConcurrent(t *testing.T) {
	const (
		producers = 8
		perProd   = 2000
	)
	r := NewRing[int](64)
	seen := make(map[int]int)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			v, ok := r.Pop()
			if !ok {
				return
			}
			seen[v]++
		}
	}()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				r.TryPush(p*perProd + i)
			}
		}(p)
	}
	wg.Wait()
	r.Close()
	<-done
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %d delivered %d times", v, n)
		}
	}
	total := r.Pushed() + r.Dropped()
	if total != producers*perProd {
		t.Fatalf("pushed %d + dropped %d = %d attempts, want %d",
			r.Pushed(), r.Dropped(), total, producers*perProd)
	}
	if uint64(len(seen)) != r.Popped() || r.Popped() != r.Pushed() {
		t.Fatalf("delivered %d, popped %d, pushed %d: must all agree",
			len(seen), r.Popped(), r.Pushed())
	}
}
