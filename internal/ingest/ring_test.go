package ingest

import (
	"sync"
	"testing"
)

func TestRingOrderAndCounters(t *testing.T) {
	r := NewRing[int](3)
	for i := 1; i <= 3; i++ {
		if !r.TryPush(i) {
			t.Fatalf("push %d refused below capacity", i)
		}
	}
	if r.TryPush(4) {
		t.Fatal("push accepted on a full ring")
	}
	if got := r.Dropped(); got != 1 {
		t.Fatalf("dropped = %d, want 1", got)
	}
	if got := r.Len(); got != 3 {
		t.Fatalf("len = %d, want 3", got)
	}
	for i := 1; i <= 3; i++ {
		v, ok := r.Pop()
		if !ok || v != i {
			t.Fatalf("pop = (%d,%v), want (%d,true)", v, ok, i)
		}
	}
	// Freed capacity accepts again; Close drains then reports exhaustion.
	if !r.TryPush(9) {
		t.Fatal("push refused after drain")
	}
	r.Close()
	if r.TryPush(10) {
		t.Fatal("push accepted after Close")
	}
	if v, ok := r.Pop(); !ok || v != 9 {
		t.Fatalf("post-close drain pop = (%d,%v), want (9,true)", v, ok)
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("pop reported ok on a closed empty ring")
	}
	if got := r.Pushed(); got != 4 {
		t.Fatalf("pushed = %d, want 4", got)
	}
	if got := r.Popped(); got != 4 {
		t.Fatalf("popped = %d, want 4", got)
	}
	if got := r.Dropped(); got != 2 {
		t.Fatalf("dropped = %d, want 2", got)
	}
}

// TestRingConcurrent hammers the ring from many producers with one consumer
// under -race: everything pushed is popped exactly once, and accepted plus
// dropped accounts for every attempt — no silent loss.
func TestRingConcurrent(t *testing.T) {
	const (
		producers = 8
		perProd   = 2000
	)
	r := NewRing[int](64)
	seen := make(map[int]int)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			v, ok := r.Pop()
			if !ok {
				return
			}
			seen[v]++
		}
	}()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				r.TryPush(p*perProd + i)
			}
		}(p)
	}
	wg.Wait()
	r.Close()
	<-done
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %d delivered %d times", v, n)
		}
	}
	total := r.Pushed() + r.Dropped()
	if total != producers*perProd {
		t.Fatalf("pushed %d + dropped %d = %d attempts, want %d",
			r.Pushed(), r.Dropped(), total, producers*perProd)
	}
	if uint64(len(seen)) != r.Popped() || r.Popped() != r.Pushed() {
		t.Fatalf("delivered %d, popped %d, pushed %d: must all agree",
			len(seen), r.Popped(), r.Pushed())
	}
}
