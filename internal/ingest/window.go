package ingest

import (
	"math"

	"cosmodel/internal/core"
	"cosmodel/internal/stats"
)

// windowEntry is one retained observation with its latency histogram.
type windowEntry struct {
	obs Observation
	lat *stats.Histogram // nil when the observation carried no latencies
}

// deviceWindow is the sliding window of one device's observations, newest
// last.
type deviceWindow struct {
	entries []windowEntry
	span    float64 // summed intervals of the retained entries
}

// add appends an entry and evicts the oldest ones that fall outside the
// window span or the entry-count bound. At least one entry is always kept
// so a device that reports rarely still has an operating point.
func (w *deviceWindow) add(e windowEntry, window float64, maxEntries int) {
	w.entries = append(w.entries, e)
	w.span += e.obs.Interval
	for len(w.entries) > 1 &&
		(w.span-w.entries[0].obs.Interval >= window || len(w.entries) > maxEntries) {
		w.span -= w.entries[0].obs.Interval
		w.entries[0] = windowEntry{}
		w.entries = w.entries[1:]
	}
}

// metrics derives the device's current online metrics from the window.
// ok is false when the window holds no requests (idle device).
func (w *deviceWindow) metrics(procs int) (core.OnlineMetrics, bool) {
	if w.span <= 0 {
		return core.OnlineMetrics{}, false
	}
	var (
		requests, dataReads    uint64
		idxH, idxM, metH, metM uint64
		datH, datM, diskOps    uint64
		writes, writeChunks    uint64
		diskBusy               float64
	)
	for _, e := range w.entries {
		requests += e.obs.Requests
		dataReads += e.obs.DataReads
		idxH += e.obs.IndexHits
		idxM += e.obs.IndexMisses
		metH += e.obs.MetaHits
		metM += e.obs.MetaMisses
		datH += e.obs.DataHits
		datM += e.obs.DataMisses
		diskBusy += e.obs.DiskBusy
		diskOps += e.obs.DiskOps
		writes += e.obs.Writes
		writeChunks += e.obs.WriteChunks
	}
	if requests == 0 {
		return core.OnlineMetrics{}, false
	}
	m := core.OnlineMetrics{
		Rate:      float64(requests) / w.span,
		MissIndex: MissRatio(idxM, idxH),
		MissMeta:  MissRatio(metM, metH),
		MissData:  MissRatio(datM, datH),
		Procs:     procs,
	}
	m.DataRate = math.Max(float64(dataReads)/w.span, m.Rate)
	if diskOps > 0 {
		m.DiskMean = diskBusy / float64(diskOps)
	}
	setWriteMetrics(&m, writes, writeChunks, w.span)
	return m, true
}

// setWriteMetrics fills the write-class fields of an operating point from
// window counters: the replica PUT rate and the mean chunks per write
// (clamped at 1 — every write lands at least one chunk).
func setWriteMetrics(m *core.OnlineMetrics, writes, chunks uint64, span float64) {
	if writes == 0 || span <= 0 {
		return
	}
	m.WriteRate = float64(writes) / span
	m.WriteChunks = math.Max(float64(chunks)/float64(writes), 1)
}

// Metrics derives the operating point of this single observation — the
// per-window feed of the online calibration controller, which judges each
// reported interval on its own rather than through the sliding window.
func (o Observation) Metrics(procs int) core.OnlineMetrics {
	m := core.OnlineMetrics{
		Rate:      float64(o.Requests) / o.Interval,
		MissIndex: MissRatio(o.IndexMisses, o.IndexHits),
		MissMeta:  MissRatio(o.MetaMisses, o.MetaHits),
		MissData:  MissRatio(o.DataMisses, o.DataHits),
		Procs:     procs,
	}
	m.DataRate = math.Max(float64(o.DataReads)/o.Interval, m.Rate)
	if o.DiskOps > 0 {
		m.DiskMean = o.DiskBusy / float64(o.DiskOps)
	}
	setWriteMetrics(&m, o.Writes, o.WriteChunks, o.Interval)
	return m
}
