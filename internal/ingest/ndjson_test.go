package ingest

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func ndjsonBody(t *testing.T, batch []Observation) string {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeNDJSON(&buf, batch); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestDecodeNDJSONRoundTrip(t *testing.T) {
	batches := randomBatches(3, 6, 1, 23)
	body := ndjsonBody(t, batches[0])
	var got []Observation
	calls := 0
	accepted, err := DecodeNDJSON(strings.NewReader(body), 6, 5, func(chunk []Observation) error {
		calls++
		got = append(got, chunk...) // copy: the chunk is pooled
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if accepted != 23 {
		t.Fatalf("accepted = %d, want 23", accepted)
	}
	if calls != 5 { // ceil(23/5)
		t.Fatalf("emit calls = %d, want 5", calls)
	}
	if len(got) != len(batches[0]) {
		t.Fatalf("decoded %d observations, want %d", len(got), len(batches[0]))
	}
	for i := range got {
		want := batches[0][i]
		if got[i].Device != want.Device || got[i].Requests != want.Requests ||
			got[i].Interval != want.Interval || len(got[i].Latencies) != len(want.Latencies) {
			t.Fatalf("observation %d round-trip mismatch:\n got %+v\nwant %+v", i, got[i], want)
		}
	}
}

func TestDecodeNDJSONSkipsBlankLines(t *testing.T) {
	body := "\n" + ndjsonBody(t, []Observation{{Device: 0, Interval: 1, Requests: 5}}) + "\n\n"
	accepted, err := DecodeNDJSON(strings.NewReader(body), 1, 0, func([]Observation) error { return nil })
	if err != nil || accepted != 1 {
		t.Fatalf("accepted=%d err=%v, want 1,nil", accepted, err)
	}
}

func TestDecodeNDJSONLineErrors(t *testing.T) {
	valid := `{"device":0,"interval":1,"requests":5}`
	cases := []struct {
		name string
		body string
		line int
	}{
		{"garbage", valid + "\n{not json}\n", 2},
		{"unknown field", `{"device":0,"interval":1,"bogus":3}` + "\n", 1},
		{"trailing data", `{"device":0,"interval":1} {"x":1}` + "\n", 1},
		{"bad device", valid + "\n" + `{"device":7,"interval":1}` + "\n", 2},
		{"zero interval", `{"device":0,"interval":0}` + "\n", 1},
		{"negative latency", `{"device":0,"interval":1,"latencies":[-1]}` + "\n", 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeNDJSON(strings.NewReader(tc.body), 4, 0, func([]Observation) error { return nil })
			var le *LineError
			if !errors.As(err, &le) {
				t.Fatalf("err = %v, want *LineError", err)
			}
			if le.Line != tc.line {
				t.Fatalf("line = %d, want %d", le.Line, tc.line)
			}
			if !errors.Is(err, ErrInvalid) {
				t.Fatalf("err = %v does not wrap ErrInvalid", err)
			}
		})
	}
}

// TestDecodeNDJSONChunkAtomic pins the streaming semantics: chunks emitted
// before a bad line stay accepted, and the error names the offending line.
func TestDecodeNDJSONChunkAtomic(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 7; i++ {
		fmt.Fprintf(&b, `{"device":%d,"interval":1,"requests":1}`+"\n", i%3)
	}
	b.WriteString(`{"device":99,"interval":1}` + "\n")
	accepted, err := DecodeNDJSON(strings.NewReader(b.String()), 3, 4, func([]Observation) error { return nil })
	var le *LineError
	if !errors.As(err, &le) || le.Line != 8 {
		t.Fatalf("err = %v, want *LineError at line 8", err)
	}
	if accepted != 4 { // one full chunk of 4 flushed; the partial 3 + bad line lost
		t.Fatalf("accepted = %d, want 4", accepted)
	}
}

// TestDecodeNDJSONEmitError propagates the consumer's error and stops.
func TestDecodeNDJSONEmitError(t *testing.T) {
	body := ndjsonBody(t, randomBatches(5, 4, 1, 10)[0])
	boom := errors.New("boom")
	accepted, err := DecodeNDJSON(strings.NewReader(body), 4, 4, func([]Observation) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if accepted != 0 {
		t.Fatalf("accepted = %d, want 0 (first emit failed)", accepted)
	}
}

// TestDecodeNDJSONReaderError surfaces reader failures unwrapped, so the
// HTTP layer keeps its MaxBytesError taxonomy.
func TestDecodeNDJSONReaderError(t *testing.T) {
	readerErr := errors.New("capped")
	r := &failingReader{data: []byte(`{"device":0,"interval":1}` + "\n"), err: readerErr}
	_, err := DecodeNDJSON(r, 1, 0, func([]Observation) error { return nil })
	if !errors.Is(err, readerErr) {
		t.Fatalf("err = %v, want the reader's error", err)
	}
}

type failingReader struct {
	data []byte
	err  error
}

func (f *failingReader) Read(p []byte) (int, error) {
	if len(f.data) == 0 {
		return 0, f.err
	}
	n := copy(p, f.data)
	f.data = f.data[n:]
	return n, nil
}

func TestDecodeNDJSONOversizedLine(t *testing.T) {
	long := `{"device":0,"interval":1,"latencies":[` + strings.Repeat("0.1,", maxLineBytes/4) + `0.1]}`
	_, err := DecodeNDJSON(strings.NewReader(long), 1, 0, func([]Observation) error { return nil })
	var le *LineError
	if !errors.As(err, &le) || !errors.Is(err, ErrInvalid) {
		t.Fatalf("err = %v, want *LineError wrapping ErrInvalid", err)
	}
}
