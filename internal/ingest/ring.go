package ingest

import "sync"

// Ring is a bounded MPSC/MPMC hand-off queue with non-blocking producers:
// TryPush never waits, and overflow is counted instead of blocking the
// caller or silently vanishing. It decouples the HTTP ingest path from
// slower downstream consumers (the calibration feed): acceptance latency
// stays flat no matter how far the consumer lags, and the Dropped counter
// makes the shed work an operational signal.
type Ring[T any] struct {
	mu       sync.Mutex
	nonempty sync.Cond
	buf      []T
	head     int // index of the oldest element
	count    int
	closed   bool
	pushed   uint64 // accepted pushes
	popped   uint64 // delivered pops
	dropped  uint64 // pushes refused because the ring was full or closed
}

// NewRing builds a ring holding up to capacity elements (minimum 1).
func NewRing[T any](capacity int) *Ring[T] {
	if capacity < 1 {
		capacity = 1
	}
	r := &Ring[T]{buf: make([]T, capacity)}
	r.nonempty.L = &r.mu
	return r
}

// TryPush enqueues v without blocking. It reports false — and counts the
// drop — when the ring is full or closed.
func (r *Ring[T]) TryPush(v T) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed || r.count == len(r.buf) {
		r.dropped++
		return false
	}
	r.buf[(r.head+r.count)%len(r.buf)] = v
	r.count++
	r.pushed++
	r.nonempty.Signal()
	return true
}

// Pop blocks until an element is available and returns it. After Close, the
// remaining elements drain in order; ok is false once the ring is closed
// and empty.
func (r *Ring[T]) Pop() (v T, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.count == 0 {
		if r.closed {
			return v, false
		}
		r.nonempty.Wait()
	}
	v = r.buf[r.head]
	var zero T
	r.buf[r.head] = zero // release the reference for GC
	r.head = (r.head + 1) % len(r.buf)
	r.count--
	r.popped++
	return v, true
}

// PopAll blocks until at least one element is available, then drains every
// queued element into dst (appended, oldest first) in one critical section —
// one consumer wakeup per backlog instead of one per element. When the ring
// is closed, the remaining elements still drain (ok stays true for that
// call); ok is false only once the ring is closed and empty.
func (r *Ring[T]) PopAll(dst []T) (out []T, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.count == 0 {
		if r.closed {
			return dst, false
		}
		r.nonempty.Wait()
	}
	var zero T
	for r.count > 0 {
		dst = append(dst, r.buf[r.head])
		r.buf[r.head] = zero // release the reference for GC
		r.head = (r.head + 1) % len(r.buf)
		r.count--
		r.popped++
	}
	return dst, true
}

// Close stops the ring: subsequent pushes are refused (and counted as
// drops), and Pop returns ok=false once the remaining elements drain.
func (r *Ring[T]) Close() {
	r.mu.Lock()
	r.closed = true
	r.nonempty.Broadcast()
	r.mu.Unlock()
}

// Len returns the elements currently queued.
func (r *Ring[T]) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Pushed returns the cumulative accepted pushes.
func (r *Ring[T]) Pushed() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pushed
}

// Popped returns the cumulative delivered pops.
func (r *Ring[T]) Popped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.popped
}

// Dropped returns the cumulative refused pushes.
func (r *Ring[T]) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}
