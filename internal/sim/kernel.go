// Package sim provides a minimal discrete-event simulation kernel: a
// priority queue of timestamped events with deterministic tie-breaking, a
// simulation clock, and helpers for seeded random-number streams. The
// cluster simulator in internal/simstore is built on it.
package sim

import (
	"container/heap"
	"math/rand"
)

// event is a scheduled callback.
type event struct {
	time float64
	seq  uint64 // FIFO tie-break for simultaneous events
	fn   func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Kernel is a discrete-event simulator. It is not safe for concurrent use;
// a simulation is a single logical thread of control.
type Kernel struct {
	now    float64
	seq    uint64
	events eventHeap
	count  uint64 // total events executed
}

// NewKernel returns a kernel with the clock at zero.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now returns the current simulation time in seconds.
func (k *Kernel) Now() float64 { return k.now }

// Processed returns the number of events executed so far.
func (k *Kernel) Processed() uint64 { return k.count }

// Pending returns the number of scheduled, not-yet-fired events.
func (k *Kernel) Pending() int { return len(k.events) }

// At schedules fn to run at absolute time t. Scheduling in the past runs the
// event at the current time (never rewinds the clock).
func (k *Kernel) At(t float64, fn func()) {
	if t < k.now {
		t = k.now
	}
	k.seq++
	heap.Push(&k.events, &event{time: t, seq: k.seq, fn: fn})
}

// After schedules fn to run d seconds from now.
func (k *Kernel) After(d float64, fn func()) {
	if d < 0 {
		d = 0
	}
	k.At(k.now+d, fn)
}

// Step executes the next event, if any, and reports whether one ran.
func (k *Kernel) Step() bool {
	if len(k.events) == 0 {
		return false
	}
	e := heap.Pop(&k.events).(*event)
	k.now = e.time
	k.count++
	e.fn()
	return true
}

// RunUntil executes events in timestamp order until the clock would pass
// limit or no events remain. Events scheduled exactly at limit still run.
func (k *Kernel) RunUntil(limit float64) {
	for len(k.events) > 0 && k.events[0].time <= limit {
		k.Step()
	}
	if k.now < limit {
		k.now = limit
	}
}

// Drain executes all remaining events. Use only for workloads that are known
// to terminate.
func (k *Kernel) Drain() {
	for k.Step() {
	}
}

// Stream derives an independent deterministic random stream from a base seed
// and a stream index, so that simulator components don't share RNG state.
func Stream(seed int64, index int64) *rand.Rand {
	// SplitMix64-style mixing of seed and index.
	z := uint64(seed) + uint64(index)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return rand.New(rand.NewSource(int64(z)))
}
