package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	k := NewKernel()
	var order []float64
	for _, tt := range []float64{3, 1, 2, 5, 4} {
		tt := tt
		k.At(tt, func() { order = append(order, tt) })
	}
	k.Drain()
	if !sort.Float64sAreSorted(order) {
		t.Errorf("events out of order: %v", order)
	}
	if len(order) != 5 {
		t.Errorf("ran %d events, want 5", len(order))
	}
	if k.Now() != 5 {
		t.Errorf("clock = %v, want 5", k.Now())
	}
	if k.Processed() != 5 {
		t.Errorf("processed = %d", k.Processed())
	}
}

func TestSimultaneousEventsAreFIFO(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(1.0, func() { order = append(order, i) })
	}
	k.Drain()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break not FIFO: %v", order)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	k := NewKernel()
	var hit float64
	k.At(2, func() {
		k.After(3, func() { hit = k.Now() })
	})
	k.Drain()
	if hit != 5 {
		t.Errorf("nested After fired at %v, want 5", hit)
	}
}

func TestSchedulingInThePastClampsToNow(t *testing.T) {
	k := NewKernel()
	var hit float64
	k.At(10, func() {
		k.At(1, func() { hit = k.Now() }) // in the past
	})
	k.Drain()
	if hit != 10 {
		t.Errorf("past event fired at %v, want 10", hit)
	}
	k2 := NewKernel()
	k2.At(5, func() {})
	k2.Drain()
	k2.After(-3, func() {})
	k2.Drain()
	if k2.Now() != 5 {
		t.Errorf("negative After moved clock to %v", k2.Now())
	}
}

func TestRunUntilStopsAtLimit(t *testing.T) {
	k := NewKernel()
	ran := 0
	for i := 1; i <= 10; i++ {
		k.At(float64(i), func() { ran++ })
	}
	k.RunUntil(5)
	if ran != 5 {
		t.Errorf("ran %d events, want 5", ran)
	}
	if k.Now() != 5 {
		t.Errorf("clock = %v, want 5", k.Now())
	}
	if k.Pending() != 5 {
		t.Errorf("pending = %d, want 5", k.Pending())
	}
	// RunUntil advances the clock even with no events in range.
	k.RunUntil(5.5)
	if k.Now() != 5.5 {
		t.Errorf("clock = %v, want 5.5", k.Now())
	}
}

func TestStepOnEmptyKernel(t *testing.T) {
	k := NewKernel()
	if k.Step() {
		t.Error("Step on empty kernel should return false")
	}
}

func TestCascadingEvents(t *testing.T) {
	// A chain of N events, each scheduling the next.
	k := NewKernel()
	count := 0
	var next func()
	next = func() {
		count++
		if count < 1000 {
			k.After(0.001, next)
		}
	}
	k.At(0, next)
	k.Drain()
	if count != 1000 {
		t.Errorf("chain ran %d times", count)
	}
}

func TestStreamDeterminism(t *testing.T) {
	a := Stream(42, 7)
	b := Stream(42, 7)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same (seed, index) must give identical streams")
		}
	}
	c := Stream(42, 8)
	d := Stream(43, 7)
	same := 0
	for i := 0; i < 100; i++ {
		x := c.Float64()
		y := d.Float64()
		if x == y {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different streams look identical (%d collisions)", same)
	}
}

func TestStreamIndependenceProperty(t *testing.T) {
	f := func(seed int64, i, j uint8) bool {
		if i == j {
			return true
		}
		a := Stream(seed, int64(i))
		b := Stream(seed, int64(j))
		return a.Uint64() != b.Uint64() || a.Uint64() != b.Uint64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkKernelEventThroughput(b *testing.B) {
	k := NewKernel()
	rng := rand.New(rand.NewSource(1))
	var next func()
	n := 0
	next = func() {
		n++
		if n < b.N {
			k.After(rng.Float64(), next)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	k.At(0, next)
	k.Drain()
}
