package coscode

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzOrderStatisticCDF drives the combinator with random stripe shapes and
// random valid base CDFs and checks the order-statistic invariants: results
// stay in [0,1], are monotone in t, nonincreasing in k, and agree with the
// brute-force Poisson-binomial tail on the raw probability vector.
func FuzzOrderStatisticCDF(f *testing.F) {
	f.Add(uint8(1), uint8(1), false, uint16(0), int64(1))
	f.Add(uint8(3), uint8(1), false, uint16(0), int64(2))
	f.Add(uint8(6), uint8(4), false, uint16(0), int64(3))
	f.Add(uint8(4), uint8(2), true, uint16(5), int64(4))
	f.Add(uint8(5), uint8(5), true, uint16(0), int64(5))
	f.Add(uint8(7), uint8(3), true, uint16(65535), int64(6))
	f.Fuzz(func(t *testing.T, nRaw, kRaw uint8, hedge bool, delayMilli uint16, seed int64) {
		n := 1 + int(nRaw)%8
		k := 1 + int(kRaw)%n
		sp := Spec{N: n, K: k}
		if hedge {
			sp.Hedge = true
			sp.HedgeDelay = float64(delayMilli) * 1e-3
			if delayMilli == 65535 {
				sp.HedgeDelay = math.Inf(1)
			}
		}
		if err := sp.Validate(); err != nil {
			t.Fatalf("generated spec %+v invalid: %v", sp, err)
		}

		// Random step-function base CDF: monotone, bounded, valid.
		rng := rand.New(rand.NewSource(seed))
		const steps = 16
		xs := make([]float64, steps)
		ys := make([]float64, steps)
		x, y := 0.0, 0.0
		for i := 0; i < steps; i++ {
			x += rng.ExpFloat64() * 0.01
			y += rng.Float64() * (1 - y) / 2
			xs[i], ys[i] = x, y
		}
		base := func(tt float64) (float64, error) {
			v := 0.0
			for i := range xs {
				if tt >= xs[i] {
					v = ys[i]
				}
			}
			return v, nil
		}

		// Invariants over a sweep of t.
		prev := 0.0
		for i := 0; i <= 40; i++ {
			tt := x * float64(i) / 40 * 1.2
			v, err := CDF(sp, base, tt)
			if err != nil {
				t.Fatalf("CDF(%v, t=%v): %v", sp, tt, err)
			}
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("CDF(%v, t=%v) = %v outside [0,1]", sp, tt, v)
			}
			if v < prev-1e-12 {
				t.Fatalf("CDF(%v) not monotone at t=%v: %v < %v", sp, tt, v, prev)
			}
			prev = v
		}

		// Ordered in k at a fixed probe time.
		probe := x / 2
		prevK := 1.0
		for kk := 1; kk <= n; kk++ {
			spk := sp
			spk.K = kk
			if spk.Hedge {
				// Primaries follow K; keep the spec valid.
				spk.K = kk
			}
			v, err := CDF(spk, base, probe)
			if err != nil {
				t.Fatalf("CDF k=%d: %v", kk, err)
			}
			if !spk.Hedge && v > prevK+1e-12 {
				t.Fatalf("CDF not ordered in k at k=%d: %v > %v", kk, v, prevK)
			}
			if !spk.Hedge {
				prevK = v
			}
		}

		// KOfN agrees with brute-force enumeration on random vectors.
		probs := make([]float64, n)
		for i := range probs {
			probs[i] = rng.Float64()
		}
		got := KOfN(probs, k)
		want := bruteKOfN(probs, k)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("KOfN(%v, %d) = %v, brute force %v", probs, k, got, want)
		}
	})
}
