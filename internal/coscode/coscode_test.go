package coscode

import (
	"errors"
	"math"
	"math/bits"
	"math/rand"
	"testing"
)

// bruteKOfN enumerates all 2^n completion patterns.
func bruteKOfN(probs []float64, k int) float64 {
	n := len(probs)
	total := 0.0
	for mask := 0; mask < 1<<n; mask++ {
		if bits.OnesCount(uint(mask)) < k {
			continue
		}
		p := 1.0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				p *= probs[i]
			} else {
				p *= 1 - probs[i]
			}
		}
		total += p
	}
	return total
}

func TestKOfNMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(8)
		probs := make([]float64, n)
		for i := range probs {
			probs[i] = rng.Float64()
		}
		for k := 1; k <= n; k++ {
			got := KOfN(probs, k)
			want := bruteKOfN(probs, k)
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("KOfN(%v, %d) = %v, brute force %v", probs, k, got, want)
			}
		}
	}
}

func TestKOfNDegenerateCases(t *testing.T) {
	probs := []float64{0.3, 0.8, 0.55, 0.1}
	// k=1: fastest-of-n, 1 - prod(1-p).
	want := 1.0
	for _, p := range probs {
		want *= 1 - p
	}
	want = 1 - want
	if got := KOfN(probs, 1); math.Abs(got-want) > 1e-14 {
		t.Errorf("k=1: got %v, want %v", got, want)
	}
	// k=n: fork-join barrier, prod(p).
	want = 1.0
	for _, p := range probs {
		want *= p
	}
	if got := KOfN(probs, len(probs)); math.Abs(got-want) > 1e-14 {
		t.Errorf("k=n: got %v, want %v", got, want)
	}
	// n=1: exact pass-through, no floating-point error allowed.
	for _, p := range []float64{0, 1e-18, 0.123456789, 1 - 1e-16, 1} {
		if got := KOfN([]float64{p}, 1); got != p {
			t.Errorf("n=1: got %v, want exactly %v", got, p)
		}
	}
	// Out-of-range k.
	if got := KOfN(probs, 0); got != 1 {
		t.Errorf("k=0: got %v, want 1", got)
	}
	if got := KOfN(probs, len(probs)+1); got != 0 {
		t.Errorf("k>n: got %v, want 0", got)
	}
}

func TestKOfNProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(10)
		probs := make([]float64, n)
		for i := range probs {
			probs[i] = rng.Float64()
		}
		prev := 1.0
		for k := 1; k <= n; k++ {
			v := KOfN(probs, k)
			if v < 0 || v > 1 {
				t.Fatalf("KOfN(%v, %d) = %v outside [0,1]", probs, k, v)
			}
			if v > prev+1e-15 {
				t.Fatalf("KOfN not ordered in k: k=%d gives %v > %v", k, v, prev)
			}
			prev = v
		}
		// Coordinatewise monotone: bumping one probability up cannot
		// lower the tail.
		k := 1 + rng.Intn(n)
		before := KOfN(probs, k)
		i := rng.Intn(n)
		probs[i] = probs[i] + (1-probs[i])*rng.Float64()
		if after := KOfN(probs, k); after < before-1e-15 {
			t.Fatalf("KOfN not monotone in probs: %v -> %v", before, after)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	valid := []Spec{
		{N: 1, K: 1},
		{N: 6, K: 4},
		{N: 3, K: 1, Hedge: true, HedgeDelay: 0.005},
		{N: 3, K: 1, Hedge: true, HedgeDelay: 0},
		{N: 3, K: 2, Hedge: true, HedgeDelay: math.Inf(1)},
	}
	for _, sp := range valid {
		if err := sp.Validate(); err != nil {
			t.Errorf("Validate(%v) = %v, want nil", sp, err)
		}
	}
	invalid := []Spec{
		{N: 0, K: 1},
		{N: 3, K: 0},
		{N: 3, K: 4},
		{N: -1, K: -1},
		{N: 3, K: 1, Hedge: true, HedgeDelay: -1},
		{N: 3, K: 1, Hedge: true, HedgeDelay: math.NaN()},
		{N: 3, K: 1, Hedge: false, HedgeDelay: 0.005},
	}
	for _, sp := range invalid {
		if err := sp.Validate(); !errors.Is(err, ErrBadSpec) {
			t.Errorf("Validate(%+v) = %v, want ErrBadSpec", sp, err)
		}
	}
}

// expBase is a deterministic exponential CDF used as the per-read base.
func expBase(rate float64) func(float64) (float64, error) {
	return func(t float64) (float64, error) {
		if t <= 0 {
			return 0, nil
		}
		return 1 - math.Exp(-rate*t), nil
	}
}

func TestCDFHedgeEndpoints(t *testing.T) {
	base := expBase(100)
	for _, tt := range []float64{0.001, 0.01, 0.03, 0.1} {
		// Δ=0 must equal the plain (n,k) fork-join read.
		plain, err := CDF(Spec{N: 4, K: 2}, base, tt)
		if err != nil {
			t.Fatal(err)
		}
		hedged0, err := CDF(Spec{N: 4, K: 2, Hedge: true, HedgeDelay: 0}, base, tt)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(plain-hedged0) > 1e-14 {
			t.Errorf("t=%v: hedge Δ=0 %v != plain %v", tt, hedged0, plain)
		}
		// Δ=∞ must equal reading exactly the K primaries.
		kOnly, err := CDF(Spec{N: 2, K: 2}, base, tt)
		if err != nil {
			t.Fatal(err)
		}
		hedgedInf, err := CDF(Spec{N: 4, K: 2, Hedge: true, HedgeDelay: math.Inf(1)}, base, tt)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(kOnly-hedgedInf) > 1e-14 {
			t.Errorf("t=%v: hedge Δ=∞ %v != k-of-k %v", tt, hedgedInf, kOnly)
		}
	}
}

func TestCDFMonotoneAndOrdered(t *testing.T) {
	base := expBase(80)
	delays := []float64{0, 0.002, 0.01, math.Inf(1)}
	for _, d := range delays {
		sp := Spec{N: 5, K: 3, Hedge: true, HedgeDelay: d}
		prev := 0.0
		for tt := 0.0; tt <= 0.2; tt += 0.002 {
			v, err := CDF(sp, base, tt)
			if err != nil {
				t.Fatal(err)
			}
			if v < 0 || v > 1 {
				t.Fatalf("CDF(%v, t=%v) = %v outside [0,1]", sp, tt, v)
			}
			if v < prev-1e-15 {
				t.Fatalf("CDF(%v) not monotone at t=%v: %v < %v", sp, tt, v, prev)
			}
			prev = v
		}
	}
	// At fixed t the CDF is nonincreasing in k.
	prev := 1.0
	for k := 1; k <= 5; k++ {
		v, err := CDF(Spec{N: 5, K: k}, base, 0.02)
		if err != nil {
			t.Fatal(err)
		}
		if v > prev+1e-15 {
			t.Fatalf("CDF not ordered in k at k=%d: %v > %v", k, v, prev)
		}
		prev = v
	}
	// A longer hedge delay cannot speed the read up.
	prev = 1.0
	for _, d := range delays {
		v, err := CDF(Spec{N: 5, K: 3, Hedge: true, HedgeDelay: d}, base, 0.03)
		if err != nil {
			t.Fatal(err)
		}
		if v > prev+1e-15 {
			t.Fatalf("CDF not ordered in hedge delay at Δ=%v: %v > %v", d, v, prev)
		}
		prev = v
	}
}

func TestCDFErrors(t *testing.T) {
	if _, err := CDF(Spec{N: 0, K: 1}, expBase(1), 1); !errors.Is(err, ErrBadSpec) {
		t.Errorf("bad spec: got %v", err)
	}
	if _, err := CDF(Spec{N: 2, K: 1}, nil, 1); !errors.Is(err, ErrBadSpec) {
		t.Errorf("nil base: got %v", err)
	}
	boom := errors.New("boom")
	bad := func(float64) (float64, error) { return 0, boom }
	if _, err := CDF(Spec{N: 2, K: 1}, bad, 1); !errors.Is(err, boom) {
		t.Errorf("base error not propagated: got %v", err)
	}
	// t <= 0 short-circuits before consulting the base.
	if v, err := CDF(Spec{N: 2, K: 1}, bad, 0); err != nil || v != 0 {
		t.Errorf("t=0: got %v, %v", v, err)
	}
}

func TestSpecString(t *testing.T) {
	if got := (Spec{N: 6, K: 4}).String(); got != "(6,4)" {
		t.Errorf("String = %q", got)
	}
	if got := (Spec{N: 3, K: 1, Hedge: true, HedgeDelay: 0.005}).String(); got != "(3,1)+hedge@0.005s" {
		t.Errorf("String = %q", got)
	}
}
