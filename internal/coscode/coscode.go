// Package coscode combines per-read response-latency CDFs into the
// latency CDF of erasure-coded and hedged reads.
//
// A coded GET reads an (n,k) stripe: n chunk sub-reads are issued to
// distinct devices and the request completes when the k-th-fastest
// sub-read responds, so its latency is the k-th order statistic of the n
// per-read latencies. With independent sub-reads the completion count by
// time t is Poisson-binomial over the per-read completion probabilities,
// and the coded CDF is its upper tail P(#done >= k) — evaluated here by a
// stable O(n·k) dynamic program rather than the binomial summation, so
// heterogeneous per-read CDFs (mixed device populations, hedged laggards)
// cost nothing extra.
//
// The hedged variant issues only k primaries at arrival and the remaining
// n-k reserves after a delay Δ; a reserve's completion probability at time
// t is therefore the base CDF at t-Δ. Δ=0 degenerates to the plain (n,k)
// fork-join read and Δ→∞ to reading exactly the k primaries.
package coscode

import (
	"errors"
	"fmt"
	"math"
)

// ErrBadSpec reports an invalid coded-read specification.
var ErrBadSpec = errors.New("coscode: invalid coded-read spec")

// Spec describes a k-of-n coded read, optionally hedged.
type Spec struct {
	// N is the stripe width: the number of devices holding a chunk of the
	// object. N=1 degenerates to a plain read.
	N int
	// K is the number of sub-reads that must complete before the request
	// can respond. K=1 is a fastest-of-N speculative read (replication),
	// K=N a full fork-join barrier.
	K int
	// Hedge, when true, issues only K primary sub-reads at arrival and
	// the remaining N-K reserves HedgeDelay seconds later (if the request
	// is still incomplete).
	Hedge bool
	// HedgeDelay is the reserve issue delay Δ in seconds. +Inf means the
	// reserves are never issued (read exactly the K primaries).
	HedgeDelay float64
}

// Validate checks the specification.
func (sp Spec) Validate() error {
	switch {
	case sp.N < 1:
		return fmt.Errorf("%w: n=%d must be >= 1", ErrBadSpec, sp.N)
	case sp.K < 1 || sp.K > sp.N:
		return fmt.Errorf("%w: k=%d outside [1,%d]", ErrBadSpec, sp.K, sp.N)
	case sp.Hedge && (math.IsNaN(sp.HedgeDelay) || sp.HedgeDelay < 0):
		return fmt.Errorf("%w: hedge delay %v must be >= 0", ErrBadSpec, sp.HedgeDelay)
	case !sp.Hedge && sp.HedgeDelay != 0:
		return fmt.Errorf("%w: hedge delay %v without hedging", ErrBadSpec, sp.HedgeDelay)
	}
	return nil
}

// Primaries returns the number of sub-reads issued at arrival time.
func (sp Spec) Primaries() int {
	if sp.Hedge {
		return sp.K
	}
	return sp.N
}

// String returns a compact description, e.g. "(6,4)" or "(3,1)+hedge@5ms".
func (sp Spec) String() string {
	if !sp.Hedge {
		return fmt.Sprintf("(%d,%d)", sp.N, sp.K)
	}
	return fmt.Sprintf("(%d,%d)+hedge@%gs", sp.N, sp.K, sp.HedgeDelay)
}

// KOfN returns P(at least k of the reads are done), where probs[i] is the
// completion probability of read i and the reads are independent. Inputs
// are clamped to [0,1] (NaN counts as 0). k <= 0 returns 1 and
// k > len(probs) returns 0; a single-read vector passes probs[0] through
// exactly, so degenerate stripes cost no floating-point error.
func KOfN(probs []float64, k int) float64 {
	n := len(probs)
	if k <= 0 {
		return 1
	}
	if k > n {
		return 0
	}
	if n == 1 {
		return clamp01(probs[0])
	}
	// c[j] = P(min(#done, k) == j) over the reads folded in so far; the
	// top cell absorbs "k or more". Updating j downward reads the
	// not-yet-updated c[j-1], which is exactly the previous iteration.
	c := make([]float64, k+1)
	c[0] = 1
	for _, p := range probs {
		p = clamp01(p)
		c[k] += c[k-1] * p
		for j := k - 1; j >= 1; j-- {
			c[j] = c[j]*(1-p) + c[j-1]*p
		}
		c[0] *= 1 - p
	}
	return clamp01(c[k])
}

// CDF evaluates the coded-read completion CDF at t: the probability that
// at least K of the N sub-reads have responded, with primaries issued at
// time 0 and reserves at HedgeDelay. base is the per-read response CDF; it
// is consulted at t for the primaries and at t-HedgeDelay for the
// reserves (never for t-Δ <= 0 or Δ = +Inf, where a reserve cannot have
// completed).
func CDF(sp Spec, base func(float64) (float64, error), t float64) (float64, error) {
	if err := sp.Validate(); err != nil {
		return 0, err
	}
	if base == nil {
		return 0, fmt.Errorf("%w: nil base CDF", ErrBadSpec)
	}
	if t <= 0 {
		return 0, nil
	}
	prim := sp.Primaries()
	p1, err := base(t)
	if err != nil {
		return 0, err
	}
	var p2 float64
	if prim < sp.N && !math.IsInf(sp.HedgeDelay, 1) {
		if y := t - sp.HedgeDelay; y > 0 {
			if p2, err = base(y); err != nil {
				return 0, err
			}
		}
	}
	probs := make([]float64, sp.N)
	for i := 0; i < prim; i++ {
		probs[i] = p1
	}
	for i := prim; i < sp.N; i++ {
		probs[i] = p2
	}
	return KOfN(probs, sp.K), nil
}

func clamp01(v float64) float64 {
	switch {
	case math.IsNaN(v) || v < 0:
		return 0
	case v > 1:
		return 1
	}
	return v
}
