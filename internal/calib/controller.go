package calib

import (
	"fmt"
	"sync"
	"time"

	"cosmodel/internal/core"
	"cosmodel/internal/dist"
)

// deviceCalib is one device's calibration state: streaming estimates, drift
// detectors, the debounce/cooldown counters and audit timestamps.
type deviceCalib struct {
	est *estimator
	ph  *PageHinkley
	cu  *CUSUM

	phRef float64 // normalization baseline for the disk mean; 0 until seen

	windows     uint64
	consecutive int
	cooldown    int

	// driftSamples accumulates the raw samples of flagged windows — pure
	// post-change data, the refit population. Cleared when the flag streak
	// breaks or a recalibration fires.
	driftSamples [3][]float64

	lastMetrics   core.OnlineMetrics
	metricsValid  bool
	driftScore    float64
	ksStat, ksThr float64

	recals    uint64
	lastDrift time.Time
	lastRecal time.Time
}

func (d *deviceCalib) state() DeviceState {
	switch {
	case d.cooldown > 0:
		return Recalibrating
	case d.consecutive > 0:
		return Drifting
	}
	return Stable
}

// resetDetectors re-baselines the device on the (new) current regime.
func (d *deviceCalib) resetDetectors() {
	d.ph.Reset()
	d.cu.Reset()
	d.phRef = 0
	d.consecutive = 0
	d.driftSamples = [3][]float64{}
	d.driftScore = 0
	d.ksStat, d.ksThr = 0, 0
	d.est.reset()
}

// Controller runs the online calibration loop: feed it one WindowStats per
// device per observation window (Observe), and it maintains the streaming
// estimators, detects confirmed drift, re-solves the device properties and
// applies them through the callback. All methods are safe for concurrent
// use.
type Controller struct {
	cfg   Config
	apply func(core.DeviceProperties) error

	mu          sync.Mutex
	base        core.DeviceProperties
	devs        []*deviceCalib
	windows     uint64
	recals      uint64
	applyErrors uint64
	lastRecal   time.Time
	lastSource  string
}

// New builds a controller. base is the currently served device-properties
// calibration; apply is invoked with freshly solved properties when drift is
// confirmed (typically serve.Engine.Recalibrate) and must be safe to call
// from Observe's goroutine. A nil apply makes recalibrations dry-run: state
// still advances, nothing is swapped.
func New(cfg Config, base core.DeviceProperties, apply func(core.DeviceProperties) error) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := base.Validate(); err != nil {
		return nil, fmt.Errorf("%w: base properties: %v", ErrBadConfig, err)
	}
	c := &Controller{cfg: cfg, apply: apply, base: base}
	for i := 0; i < cfg.Devices; i++ {
		c.devs = append(c.devs, &deviceCalib{
			est: newEstimator(&cfg),
			ph:  NewPageHinkley(cfg.PHDelta, cfg.PHLambda),
			cu:  NewCUSUM(cfg.CUSUMSlack, cfg.CUSUMThreshold),
		})
	}
	return c, nil
}

// Props returns the currently applied device properties.
func (c *Controller) Props() core.DeviceProperties {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.base
}

// Observe absorbs one device-window of measurements, runs the detectors and
// — when drift is confirmed — recalibrates. It reports whether a
// recalibration fired. An error from the apply callback is returned after
// the device is put into cooldown, so a persistently failing swap cannot
// re-fire every window.
func (c *Controller) Observe(ws WindowStats) (recalibrated bool, err error) {
	if err := ws.Validate(c.cfg.Devices); err != nil {
		return false, err
	}
	c.mu.Lock()
	// Snapshot every device's state: a recalibration cools down all of
	// them, so transitions are not confined to ws.Device.
	var before []DeviceState
	if c.cfg.OnTransition != nil {
		before = make([]DeviceState, len(c.devs))
		for i, d := range c.devs {
			before[i] = d.state()
		}
	}
	recalibrated, err = c.observeLocked(ws)
	type transition struct {
		device   int
		from, to DeviceState
	}
	var changed []transition
	for i := range before {
		if to := c.devs[i].state(); to != before[i] {
			changed = append(changed, transition{i, before[i], to})
		}
	}
	c.mu.Unlock()
	// Fire outside the lock so the hook may call Status or Props.
	for _, tr := range changed {
		c.cfg.OnTransition(tr.device, tr.from, tr.to)
	}
	return recalibrated, err
}

// observeLocked is Observe's body; c.mu must be held.
func (c *Controller) observeLocked(ws WindowStats) (recalibrated bool, err error) {
	d := c.devs[ws.Device]
	c.windows++
	d.windows++
	b := d.est.observe(&c.cfg, ws)
	if ws.Metrics.Validate() == nil {
		d.lastMetrics = ws.Metrics
		d.metricsValid = true
	}

	if d.cooldown > 0 {
		d.cooldown--
		return false, nil
	}

	flagged := c.detect(d, ws, b)
	if !flagged {
		d.consecutive = 0
		d.driftSamples = [3][]float64{}
		return false, nil
	}
	d.lastDrift = c.cfg.now()
	d.consecutive++
	d.driftSamples[0] = append(d.driftSamples[0], ws.Index...)
	d.driftSamples[1] = append(d.driftSamples[1], ws.Meta...)
	d.driftSamples[2] = append(d.driftSamples[2], ws.Data...)
	if d.consecutive < c.cfg.ConfirmWindows {
		return false, nil
	}
	return true, c.recalibrate(d)
}

// detect runs every detector for the window and reports whether any
// flagged. The per-detector statistics are recorded for Status.
func (c *Controller) detect(d *deviceCalib, ws WindowStats, b float64) bool {
	flagged := false
	d.driftScore = 0
	if b > 0 {
		if d.phRef == 0 {
			d.phRef = b
		}
		if d.ph.Add(b / d.phRef) {
			flagged = true
		}
		d.driftScore = d.ph.Score()
	}
	if ws.Metrics.Validate() == nil {
		if d.cu.Add(ws.Metrics.MissData) {
			flagged = true
		}
		if s := d.cu.Score(); s > d.driftScore {
			d.driftScore = s
		}
	}
	// Shape check per class against the currently served family.
	served := [3]dist.Distribution{c.base.IndexDisk, c.base.MetaDisk, c.base.DataDisk}
	d.ksStat, d.ksThr = 0, 0
	for class := 0; class < 3; class++ {
		stat, thr, flag := ksCheck(d.est.classes[class].all(), served[class], c.cfg.KSFactor, c.cfg.MinKSSamples)
		if flag {
			flagged = true
		}
		if thr > 0 && (d.ksThr == 0 || stat/thr > d.ksStat/d.ksThr) {
			d.ksStat, d.ksThr = stat, thr
		}
		if thr > 0 && stat/thr > d.driftScore {
			d.driftScore = stat / thr
		}
	}
	return flagged
}

// recalibrate re-solves the device properties from the drift evidence and
// applies them. Preference order: a per-class Gamma refit from the pooled
// post-drift samples of every currently drifting device (classes without
// enough samples keep their served distribution); if no class has enough
// samples, the §IV-B rescale of the served properties to the confirming
// device's current mean and operating point. Called with c.mu held.
func (c *Controller) recalibrate(confirming *deviceCalib) error {
	var pooled [3][]float64
	for _, d := range c.devs {
		if d.consecutive == 0 {
			continue
		}
		for class := 0; class < 3; class++ {
			pooled[class] = append(pooled[class], d.driftSamples[class]...)
		}
	}
	props := c.base
	source := ""
	fitted := [3]*dist.Distribution{&props.IndexDisk, &props.MetaDisk, &props.DataDisk}
	for class := 0; class < 3; class++ {
		if len(pooled[class]) < c.cfg.MinRefitSamples {
			continue
		}
		f, err := dist.FitGammaOrDegenerate(pooled[class])
		if err != nil {
			c.cfg.logf("calib: refit class %d on %d samples: %v", class, len(pooled[class]), err)
			continue
		}
		*fitted[class] = f
		source = "refit"
	}
	if source == "" {
		if !confirming.metricsValid || confirming.est.diskMean.value() <= 0 {
			// No refit population and no operating point: nothing sound to
			// apply. Stay drifting and try again next window.
			confirming.consecutive = c.cfg.ConfirmWindows - 1
			c.cfg.logf("calib: drift confirmed but no evidence to recalibrate from; deferring")
			return nil
		}
		rescaled, err := core.RescaleDeviceProperties(c.base, confirming.est.diskMean.value(), confirming.lastMetrics)
		if err != nil {
			confirming.consecutive = c.cfg.ConfirmWindows - 1
			c.cfg.logf("calib: rescale fallback failed: %v", err)
			return nil
		}
		props = rescaled
		source = "rescale"
	}
	// Cooldown and re-baseline every device regardless of the apply
	// outcome: the decision to recalibrate was made, and hammering a broken
	// swap path every window helps nobody.
	confirming.recals++
	confirming.lastRecal = c.cfg.now()
	for _, d := range c.devs {
		d.resetDetectors()
		d.cooldown = c.cfg.CooldownWindows
	}
	if c.apply != nil {
		if err := c.apply(props); err != nil {
			c.applyErrors++
			c.cfg.logf("calib: applying recalibrated properties: %v", err)
			return fmt.Errorf("calib: applying recalibrated properties: %w", err)
		}
	}
	c.base = props
	c.recals++
	c.lastRecal = confirming.lastRecal
	c.lastSource = source
	c.cfg.logf("calib: recalibrated (source=%s, recalibrations=%d)", source, c.recals)
	return nil
}

// Status reports the subsystem's externally visible state.
func (c *Controller) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.now()
	age := func(t time.Time) float64 {
		if t.IsZero() {
			return -1
		}
		return now.Sub(t).Seconds()
	}
	st := Status{
		Windows:              c.windows,
		Recalibrations:       c.recals,
		ApplyErrors:          c.applyErrors,
		LastRecalibrationAge: age(c.lastRecal),
		LastFitSource:        c.lastSource,
	}
	for i, d := range c.devs {
		st.Devices = append(st.Devices, DeviceStatus{
			Device:               i,
			State:                d.state().String(),
			Windows:              d.windows,
			ConsecutiveFlags:     d.consecutive,
			CooldownRemaining:    d.cooldown,
			DriftScore:           d.driftScore,
			KSStat:               d.ksStat,
			KSThreshold:          d.ksThr,
			DiskMeanEW:           d.est.diskMean.value(),
			MissByLatency:        d.est.missByLatency(),
			Recalibrations:       d.recals,
			LastDriftAge:         age(d.lastDrift),
			LastRecalibrationAge: age(d.lastRecal),
		})
	}
	return st
}
