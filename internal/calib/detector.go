package calib

import (
	"math"

	"cosmodel/internal/dist"
)

// PageHinkley is a two-sided Page–Hinkley change detector: it accumulates
// deviations of the input from its own running mean and flags when the
// cumulative deviation since the most favourable point exceeds lambda in
// either direction. Deviations smaller than delta per step are tolerated.
type PageHinkley struct {
	delta, lambda float64

	n    float64
	mean float64

	sumUp   float64 // cumulative (x - mean - delta): rises on upward drift
	minUp   float64
	sumDown float64 // cumulative (x - mean + delta): falls on downward drift
	maxDown float64
}

// NewPageHinkley builds a detector with per-step tolerance delta and flag
// threshold lambda.
func NewPageHinkley(delta, lambda float64) *PageHinkley {
	return &PageHinkley{delta: delta, lambda: lambda}
}

// Add absorbs one observation and reports whether the detector flags.
func (p *PageHinkley) Add(x float64) bool {
	p.n++
	p.mean += (x - p.mean) / p.n
	p.sumUp += x - p.mean - p.delta
	if p.sumUp < p.minUp {
		p.minUp = p.sumUp
	}
	p.sumDown += x - p.mean + p.delta
	if p.sumDown > p.maxDown {
		p.maxDown = p.sumDown
	}
	return p.Score() >= 1
}

// Score is the detector statistic normalized by lambda: >= 1 flags.
func (p *PageHinkley) Score() float64 {
	up := p.sumUp - p.minUp
	down := p.maxDown - p.sumDown
	return math.Max(up, down) / p.lambda
}

// Reset restarts the detector (a new baseline regime).
func (p *PageHinkley) Reset() { *p = PageHinkley{delta: p.delta, lambda: p.lambda} }

// CUSUM is a two-sided cumulative-sum change detector against a fixed
// reference captured from the first observation after a reset: per-step
// deviations within the slack are absorbed, and a cumulative excess beyond
// the threshold flags.
type CUSUM struct {
	slack, threshold float64

	ref    float64
	hasRef bool
	up     float64
	down   float64
}

// NewCUSUM builds a detector with per-step slack and flag threshold.
func NewCUSUM(slack, threshold float64) *CUSUM {
	return &CUSUM{slack: slack, threshold: threshold}
}

// Add absorbs one observation and reports whether the detector flags. The
// first observation after a reset only sets the reference.
func (c *CUSUM) Add(x float64) bool {
	if !c.hasRef {
		c.ref, c.hasRef = x, true
		return false
	}
	d := x - c.ref
	c.up = math.Max(0, c.up+d-c.slack)
	c.down = math.Max(0, c.down-d-c.slack)
	return c.Score() >= 1
}

// Score is the detector statistic normalized by the threshold: >= 1 flags.
func (c *CUSUM) Score() float64 {
	return math.Max(c.up, c.down) / c.threshold
}

// Reset restarts the detector; the next Add captures a fresh reference.
func (c *CUSUM) Reset() { *c = CUSUM{slack: c.slack, threshold: c.threshold} }

// ksCheck runs the shape-only goodness-of-fit test: the Kolmogorov–Smirnov
// distance between the samples and the served family rescaled to the
// samples' own mean, against the threshold factor/sqrt(n). Rescaling first
// makes the check blind to pure mean drift — which the model's online §IV-B
// tracking already absorbs — so only genuine shape changes flag. It returns
// the statistic, the threshold and the verdict; below minSamples it reports
// (0, 0, false).
func ksCheck(samples []float64, served dist.Distribution, factor float64, minSamples int) (stat, threshold float64, flagged bool) {
	if len(samples) < minSamples || served == nil {
		return 0, 0, false
	}
	var sum float64
	for _, v := range samples {
		sum += v
	}
	m := sum / float64(len(samples))
	if !(m > 0) {
		return 0, 0, false
	}
	stat = dist.KolmogorovSmirnov(samples, dist.ScaleToMean(served, m))
	threshold = factor / math.Sqrt(float64(len(samples)))
	return stat, threshold, stat > threshold
}
