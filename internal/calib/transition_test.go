package calib

import (
	"fmt"
	"math/rand"
	"testing"

	"cosmodel/internal/dist"
)

// TestOnTransitionFiresPerDevice drives device 0 through the full
// stable → drifting → recalibrating cycle and checks that every state
// change — including the cross-device cooldown a recalibration imposes —
// surfaces exactly once through Config.OnTransition.
func TestOnTransitionFiresPerDevice(t *testing.T) {
	props := baseProps()
	type tr struct {
		device   int
		from, to DeviceState
	}
	var seen []tr
	cfg := DefaultConfig(2)
	cfg.OnTransition = func(device int, from, to DeviceState) {
		seen = append(seen, tr{device, from, to})
	}
	c, err := New(cfg, props, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	for w := 0; w < 20; w++ {
		for dev := 0; dev < 2; dev++ {
			if _, err := c.Observe(windowFrom(dev, props.IndexDisk, props.MetaDisk, props.DataDisk, 0.30, rng)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if len(seen) != 0 {
		t.Fatalf("stationary warmup fired transitions: %v", seen)
	}

	// Shift only device 0; device 1 stays on the served regime until the
	// recalibration cools every device down.
	slow := dist.NewGammaMeanSCV(16e-3, 1.6)
	recalibrated := false
	for w := 0; w < 10 && !recalibrated; w++ {
		var err error
		recalibrated, err = c.Observe(windowFrom(0, props.IndexDisk, props.MetaDisk, slow, 0.45, rng))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Observe(windowFrom(1, props.IndexDisk, props.MetaDisk, props.DataDisk, 0.30, rng)); err != nil {
			t.Fatal(err)
		}
	}
	if !recalibrated {
		t.Fatal("drift never confirmed")
	}
	want := map[string]bool{
		"0:stable->drifting":        false,
		"0:drifting->recalibrating": false,
		"1:stable->recalibrating":   false, // cross-device cooldown
	}
	for _, s := range seen {
		key := fmt.Sprintf("%d:%s->%s", s.device, s.from, s.to)
		if _, ok := want[key]; ok {
			want[key] = true
		}
	}
	for key, hit := range want {
		if !hit {
			t.Errorf("transition %s never fired (saw %v)", key, seen)
		}
	}

	// Cooldown expiry returns the devices to stable, again via the hook.
	before := len(seen)
	for w := 0; w <= cfg.CooldownWindows+1; w++ {
		for dev := 0; dev < 2; dev++ {
			if _, err := c.Observe(windowFrom(dev, props.IndexDisk, props.MetaDisk, slow, 0.45, rng)); err != nil {
				t.Fatal(err)
			}
		}
	}
	backToStable := 0
	for _, s := range seen[before:] {
		if s.from == Recalibrating && s.to != Recalibrating {
			backToStable++
		}
	}
	if backToStable < 2 {
		t.Errorf("cooldown expiry transitions = %d, want both devices (saw %v)", backToStable, seen[before:])
	}
}
