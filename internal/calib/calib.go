// Package calib keeps a served analytic model honest: it watches the same
// per-device observation stream the prediction engine consumes, maintains
// streaming estimates of the quantities the model was calibrated from
// (per-operation disk service-time distributions, cache miss ratios, overall
// mean disk service time), detects when the live system has drifted away from
// the calibration (change detection on means, two-sample goodness-of-fit on
// shapes), and — once drift is confirmed — re-solves the paper's §IV-B
// calibration for fresh core.DeviceProperties and swaps them into the serving
// engine atomically.
//
// The subsystem deliberately separates three concerns:
//
//   - estimator: per-device exponentially-weighted moments, windowed raw
//     sample buffers and live Gamma refits (estimator.go);
//   - detectors: two-sided Page–Hinkley on the windowed overall disk service
//     mean, CUSUM on the data-read miss ratio, and a Kolmogorov–Smirnov check
//     of recent raw samples against the currently-served family
//     (detector.go);
//   - controller: the per-device stable → drifting → recalibrating state
//     machine with confirmation and cooldown, and the recalibration itself
//     (controller.go).
//
// A mean-only drift is already absorbed online by the model (§IV-B re-solves
// service times from the observed mean every window), so the detectors are
// tuned to catch what that tracking cannot: distribution-shape changes and
// cache-behaviour regime shifts that require refitting, not rescaling.
package calib

import (
	"errors"
	"fmt"
	"time"

	"cosmodel/internal/core"
)

// Errors returned by the calibration subsystem.
var (
	// ErrBadConfig reports an invalid calibration configuration.
	ErrBadConfig = errors.New("calib: invalid configuration")
	// ErrBadWindow reports an invalid window-stats payload.
	ErrBadWindow = errors.New("calib: invalid window stats")
)

// Config tunes the calibration controller. Start from DefaultConfig; the
// zero value is invalid.
type Config struct {
	// Devices is the number of storage devices tracked.
	Devices int

	// EWAlpha is the weight of the newest window in the exponentially
	// weighted moment trackers (0 < alpha <= 1).
	EWAlpha float64

	// SampleWindows bounds the per-class raw-sample buffer to the most
	// recent SampleWindows windows — the population the K-S check and any
	// refit draw from.
	SampleWindows int

	// PHDelta and PHLambda parameterize the two-sided Page–Hinkley test on
	// the normalized windowed disk-service mean (x = b/b_ref): delta is the
	// drift tolerated per window, lambda the cumulative deviation that
	// flags.
	PHDelta  float64
	PHLambda float64

	// CUSUMSlack and CUSUMThreshold parameterize the two-sided CUSUM on the
	// data-read cache miss ratio: per-window deviations below the slack are
	// absorbed; a cumulative excess beyond the threshold flags.
	CUSUMSlack     float64
	CUSUMThreshold float64

	// KSFactor scales the Kolmogorov–Smirnov flag threshold
	// KSFactor/sqrt(n) for n buffered samples; MinKSSamples gates the test
	// until the buffer is informative. The check is shape-only: the served
	// family is rescaled to the samples' mean before comparing, so drift
	// the online mean-tracking already absorbs does not flag.
	KSFactor     float64
	MinKSSamples int

	// ConfirmWindows is the number of consecutive flagged windows required
	// before drift is confirmed and a recalibration fires (debounce).
	ConfirmWindows int
	// CooldownWindows suppresses detection for this many windows after a
	// recalibration while the estimators re-baseline on the new regime.
	CooldownWindows int

	// MinRefitSamples is the per-class pooled post-drift sample count
	// needed to refit that class's distribution from data; classes with
	// fewer samples keep their current distribution, and if no class
	// qualifies the controller falls back to the §IV-B rescale
	// (core.RescaleDeviceProperties).
	MinRefitSamples int

	// MissThreshold is the latency threshold (seconds) separating memory
	// from disk operations when estimating miss ratios from raw operation
	// latencies (the paper's §IV-B method); 0 means
	// core.DefaultMissThreshold.
	MissThreshold float64

	// OnTransition, when non-nil, is called once per device whose drift
	// state changed during a Controller.Observe call (a recalibration
	// moves every device into cooldown at once, so one Observe may report
	// several transitions). It runs after the controller's lock is
	// released, so it may call back into the controller; it must be safe
	// for concurrent use. Observability layers hook it to count
	// stable/drifting/recalibrating transitions.
	OnTransition func(device int, from, to DeviceState)

	// Now supplies wall-clock time; nil means time.Now.
	Now func() time.Time
	// Logf receives diagnostic lines; nil discards them.
	Logf func(format string, args ...any)
}

// DefaultConfig returns a calibration configuration for the given number of
// devices, tuned for multi-second observation windows: detection within a
// few windows of a genuine regime shift, no flags on a stationary run.
func DefaultConfig(devices int) Config {
	return Config{
		Devices:         devices,
		EWAlpha:         0.3,
		SampleWindows:   8,
		PHDelta:         0.03,
		PHLambda:        0.8,
		CUSUMSlack:      0.04,
		CUSUMThreshold:  0.15,
		KSFactor:        2.2,
		MinKSSamples:    150,
		ConfirmWindows:  2,
		CooldownWindows: 3,
		MinRefitSamples: 100,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Devices < 1:
		return fmt.Errorf("%w: need at least one device", ErrBadConfig)
	case c.EWAlpha <= 0 || c.EWAlpha > 1:
		return fmt.Errorf("%w: EW alpha %v outside (0,1]", ErrBadConfig, c.EWAlpha)
	case c.SampleWindows < 1:
		return fmt.Errorf("%w: need at least one sample window", ErrBadConfig)
	case c.PHDelta < 0 || c.PHLambda <= 0:
		return fmt.Errorf("%w: Page–Hinkley delta %v / lambda %v", ErrBadConfig, c.PHDelta, c.PHLambda)
	case c.CUSUMSlack < 0 || c.CUSUMThreshold <= 0:
		return fmt.Errorf("%w: CUSUM slack %v / threshold %v", ErrBadConfig, c.CUSUMSlack, c.CUSUMThreshold)
	case c.KSFactor <= 0 || c.MinKSSamples < 2:
		return fmt.Errorf("%w: K-S factor %v / min samples %d", ErrBadConfig, c.KSFactor, c.MinKSSamples)
	case c.ConfirmWindows < 1:
		return fmt.Errorf("%w: confirm windows %d", ErrBadConfig, c.ConfirmWindows)
	case c.CooldownWindows < 0:
		return fmt.Errorf("%w: cooldown windows %d", ErrBadConfig, c.CooldownWindows)
	case c.MinRefitSamples < 2:
		return fmt.Errorf("%w: min refit samples %d", ErrBadConfig, c.MinRefitSamples)
	case c.MissThreshold < 0:
		return fmt.Errorf("%w: miss threshold %v", ErrBadConfig, c.MissThreshold)
	}
	return nil
}

func (c Config) now() time.Time {
	if c.Now != nil {
		return c.Now()
	}
	return time.Now()
}

func (c Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

func (c Config) missThreshold() float64 {
	if c.MissThreshold > 0 {
		return c.MissThreshold
	}
	return core.DefaultMissThreshold
}

// DeviceState is the drift state of one device.
type DeviceState int

const (
	// Stable: no detector flags outstanding.
	Stable DeviceState = iota
	// Drifting: flagged, not yet confirmed (debouncing).
	Drifting
	// Recalibrating: a recalibration just fired on this device's evidence;
	// detection is suppressed while estimators re-baseline (cooldown).
	Recalibrating
)

// String returns the state name.
func (s DeviceState) String() string {
	switch s {
	case Stable:
		return "stable"
	case Drifting:
		return "drifting"
	case Recalibrating:
		return "recalibrating"
	}
	return fmt.Sprintf("DeviceState(%d)", int(s))
}

// WindowStats is one device's measurements for one observation window — the
// calibration subsystem's entire input. All sample slices are optional.
type WindowStats struct {
	// Device identifies the storage device, 0 <= Device < Config.Devices.
	Device int
	// Interval is the window span in seconds.
	Interval float64
	// Metrics is the device's current windowed online metrics (rate, miss
	// ratios, observed mean disk service time). Used as the operating point
	// for the §IV-B rescale fallback; may be the zero value for an idle
	// device.
	Metrics core.OnlineMetrics
	// Index, Meta, Data are raw disk service-time samples (seconds) per
	// operation class observed in the window.
	Index, Meta, Data []float64
	// OpLatencies are raw operation latencies covering memory and disk
	// alike; when present the estimator derives a live miss ratio from them
	// by the paper's latency-threshold method.
	OpLatencies []float64
}

// Validate checks the window stats against the deployment size.
func (w WindowStats) Validate(devices int) error {
	if w.Device < 0 || w.Device >= devices {
		return fmt.Errorf("%w: device %d outside [0,%d)", ErrBadWindow, w.Device, devices)
	}
	if w.Interval <= 0 {
		return fmt.Errorf("%w: interval %v must be positive", ErrBadWindow, w.Interval)
	}
	for _, set := range [][]float64{w.Index, w.Meta, w.Data, w.OpLatencies} {
		for _, v := range set {
			if !(v >= 0) || v != v {
				return fmt.Errorf("%w: negative or NaN sample %v", ErrBadWindow, v)
			}
		}
	}
	return nil
}

// DeviceStatus is the externally visible calibration state of one device.
type DeviceStatus struct {
	Device  int    `json:"device"`
	State   string `json:"state"`
	Windows uint64 `json:"windowsObserved"`
	// ConsecutiveFlags is the current debounce count; a recalibration fires
	// when it reaches ConfirmWindows.
	ConsecutiveFlags  int `json:"consecutiveFlags"`
	CooldownRemaining int `json:"cooldownRemaining"`
	// DriftScore is the strongest detector statistic normalized by its
	// threshold: >= 1 means the last window flagged.
	DriftScore float64 `json:"driftScore"`
	// KSStat and KSThreshold are the last shape check's statistic and flag
	// level (0 until the sample buffer reaches MinKSSamples).
	KSStat      float64 `json:"ksStat"`
	KSThreshold float64 `json:"ksThreshold"`
	// DiskMeanEW is the exponentially weighted overall mean disk service
	// time (seconds).
	DiskMeanEW float64 `json:"diskMeanEW"`
	// MissByLatency is the EW miss ratio estimated from raw operation
	// latencies by the threshold method; -1 until latencies are supplied.
	MissByLatency  float64 `json:"missByLatency"`
	Recalibrations uint64  `json:"recalibrations"`
	// LastDriftAge and LastRecalibrationAge are seconds since the last
	// flagged window / recalibration on this device; -1 means never.
	LastDriftAge         float64 `json:"lastDriftAgeSeconds"`
	LastRecalibrationAge float64 `json:"lastRecalibrationAgeSeconds"`
}

// Status is the externally visible state of the whole subsystem.
type Status struct {
	Windows        uint64 `json:"windowsObserved"`
	Recalibrations uint64 `json:"recalibrations"`
	ApplyErrors    uint64 `json:"applyErrors"`
	// LastRecalibrationAge is seconds since the last successful
	// recalibration; -1 means never.
	LastRecalibrationAge float64 `json:"lastRecalibrationAgeSeconds"`
	// LastFitSource reports how the last recalibration derived its
	// properties: "refit" (per-class Gamma refit from post-drift samples)
	// or "rescale" (§IV-B rescale); empty before any.
	LastFitSource string         `json:"lastFitSource"`
	Devices       []DeviceStatus `json:"devices"`
}
