package calib

import (
	"math/rand"
	"testing"

	"cosmodel/internal/dist"
)

func TestPageHinkleyDetectsShift(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dir := range []float64{+1, -1} {
		ph := NewPageHinkley(0.03, 0.8)
		// Stationary phase: unit mean with 3% noise must not flag.
		for i := 0; i < 200; i++ {
			if ph.Add(1 + 0.03*rng.NormFloat64()) {
				t.Fatalf("dir %v: flagged on stationary input at step %d (score %v)", dir, i, ph.Score())
			}
		}
		// A 60% shift must flag within a few steps.
		fired := -1
		for i := 0; i < 10; i++ {
			if ph.Add(1 + dir*0.6 + 0.03*rng.NormFloat64()) {
				fired = i
				break
			}
		}
		if fired < 0 || fired > 4 {
			t.Errorf("dir %v: shift flagged at step %d, want within 4", dir, fired)
		}
		ph.Reset()
		if ph.Score() != 0 {
			t.Errorf("dir %v: score %v after reset", dir, ph.Score())
		}
	}
}

func TestCUSUMDetectsShift(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, dir := range []float64{+1, -1} {
		cu := NewCUSUM(0.04, 0.15)
		for i := 0; i < 200; i++ {
			if cu.Add(0.3 + 0.02*rng.NormFloat64()) {
				t.Fatalf("dir %v: flagged on stationary input at step %d", dir, i)
			}
		}
		fired := -1
		for i := 0; i < 10; i++ {
			if cu.Add(0.3 + dir*0.15 + 0.02*rng.NormFloat64()) {
				fired = i
				break
			}
		}
		if fired < 0 || fired > 4 {
			t.Errorf("dir %v: shift flagged at step %d, want within 4", dir, fired)
		}
		cu.Reset()
		if cu.Score() != 0 {
			t.Errorf("dir %v: score %v after reset", dir, cu.Score())
		}
	}
}

func sampleN(d dist.Distribution, n int, rng *rand.Rand) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = d.Sample(rng)
	}
	return out
}

func TestKSCheckShapeOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	served := dist.NewGammaMeanSCV(8e-3, 0.4)

	// Same family: no flag.
	same := sampleN(served, 400, rng)
	stat, thr, flag := ksCheck(same, served, 2.2, 150)
	if flag {
		t.Errorf("same-family samples flagged: stat %v > thr %v", stat, thr)
	}
	// Pure mean shift (same SCV): the check rescales first, so no flag —
	// the online mean tracking absorbs this without recalibration.
	shifted := sampleN(dist.NewGammaMeanSCV(16e-3, 0.4), 400, rng)
	if stat, thr, flag := ksCheck(shifted, served, 2.2, 150); flag {
		t.Errorf("pure mean shift flagged: stat %v > thr %v", stat, thr)
	}
	// A genuine shape change (SCV 0.4 -> 1.6) must flag.
	fat := sampleN(dist.NewGammaMeanSCV(8e-3, 1.6), 400, rng)
	if stat, thr, flag := ksCheck(fat, served, 2.2, 150); !flag {
		t.Errorf("shape change not flagged: stat %v <= thr %v", stat, thr)
	}
	// Below the sample gate: no verdict.
	if stat, thr, flag := ksCheck(fat[:100], served, 2.2, 150); flag || stat != 0 || thr != 0 {
		t.Error("under-sampled check must not run")
	}
	// Nil served distribution: no verdict.
	if _, _, flag := ksCheck(fat, nil, 2.2, 150); flag {
		t.Error("nil served distribution must not flag")
	}
}
