package calib

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"cosmodel/internal/core"
	"cosmodel/internal/dist"
)

func baseProps() core.DeviceProperties {
	return core.DeviceProperties{
		IndexDisk: dist.NewGammaMeanSCV(9e-3, 0.45),
		MetaDisk:  dist.NewGammaMeanSCV(6e-3, 0.50),
		DataDisk:  dist.NewGammaMeanSCV(8e-3, 0.40),
		ParseBE:   dist.Degenerate{Value: 0.5e-3},
		ParseFE:   dist.Degenerate{Value: 0.3e-3},
	}
}

// windowFrom draws one device-window of raw samples from the given per-class
// distributions and derives consistent metrics.
func windowFrom(dev int, index, meta, data dist.Distribution, missData float64, rng *rand.Rand) WindowStats {
	ws := WindowStats{
		Device:   dev,
		Interval: 3,
		Index:    sampleN(index, 20, rng),
		Meta:     sampleN(meta, 20, rng),
		Data:     sampleN(data, 60, rng),
	}
	var sum float64
	var n int
	for _, set := range [][]float64{ws.Index, ws.Meta, ws.Data} {
		for _, v := range set {
			sum += v
		}
		n += len(set)
	}
	ws.Metrics = core.OnlineMetrics{
		Rate:      40,
		DataRate:  50,
		MissIndex: 0.05,
		MissMeta:  0.08,
		MissData:  missData,
		Procs:     1,
		DiskMean:  sum / float64(n),
	}
	return ws
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(4).Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Devices = 0 },
		func(c *Config) { c.EWAlpha = 0 },
		func(c *Config) { c.EWAlpha = 1.5 },
		func(c *Config) { c.SampleWindows = 0 },
		func(c *Config) { c.PHLambda = 0 },
		func(c *Config) { c.PHDelta = -1 },
		func(c *Config) { c.CUSUMThreshold = 0 },
		func(c *Config) { c.CUSUMSlack = -1 },
		func(c *Config) { c.KSFactor = 0 },
		func(c *Config) { c.MinKSSamples = 1 },
		func(c *Config) { c.ConfirmWindows = 0 },
		func(c *Config) { c.CooldownWindows = -1 },
		func(c *Config) { c.MinRefitSamples = 1 },
		func(c *Config) { c.MissThreshold = -1 },
	}
	for i, mutate := range bad {
		c := DefaultConfig(4)
		mutate(&c)
		if err := c.Validate(); !errors.Is(err, ErrBadConfig) {
			t.Errorf("mutation %d: error %v, want ErrBadConfig", i, err)
		}
	}
}

func TestObserveValidation(t *testing.T) {
	c, err := New(DefaultConfig(2), baseProps(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, ws := range []WindowStats{
		{Device: -1, Interval: 3},
		{Device: 2, Interval: 3},
		{Device: 0, Interval: 0},
		{Device: 0, Interval: 3, Data: []float64{-1}},
		{Device: 0, Interval: 3, OpLatencies: []float64{math.NaN()}},
	} {
		if _, err := c.Observe(ws); !errors.Is(err, ErrBadWindow) {
			t.Errorf("Observe(%+v) error %v, want ErrBadWindow", ws, err)
		}
	}
	if _, err := New(DefaultConfig(0), baseProps(), nil); !errors.Is(err, ErrBadConfig) {
		t.Errorf("bad config accepted: %v", err)
	}
	if _, err := New(DefaultConfig(2), core.DeviceProperties{}, nil); !errors.Is(err, ErrBadConfig) {
		t.Errorf("bad base properties accepted: %v", err)
	}
}

// TestStationaryNoFalsePositives feeds 60 windows per device drawn from the
// served calibration itself: nothing may flag, nothing may recalibrate.
func TestStationaryNoFalsePositives(t *testing.T) {
	props := baseProps()
	applied := 0
	c, err := New(DefaultConfig(2), props, func(core.DeviceProperties) error {
		applied++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for w := 0; w < 60; w++ {
		for dev := 0; dev < 2; dev++ {
			miss := 0.30 + 0.02*rng.NormFloat64()
			recal, err := c.Observe(windowFrom(dev, props.IndexDisk, props.MetaDisk, props.DataDisk, miss, rng))
			if err != nil {
				t.Fatal(err)
			}
			if recal {
				t.Fatalf("false recalibration at window %d device %d", w, dev)
			}
		}
	}
	st := c.Status()
	if applied != 0 || st.Recalibrations != 0 {
		t.Errorf("applied=%d recalibrations=%d on a stationary run", applied, st.Recalibrations)
	}
	for _, ds := range st.Devices {
		if ds.State != "stable" {
			t.Errorf("device %d state %q, want stable", ds.Device, ds.State)
		}
	}
	if st.Windows != 120 {
		t.Errorf("windows observed = %d, want 120", st.Windows)
	}
}

// TestShapeDriftTriggersRefit injects a regime where the data-read service
// distribution becomes slower and much burstier, and checks that the
// controller confirms drift within a few windows and refits the data class
// from post-drift samples.
func TestShapeDriftTriggersRefit(t *testing.T) {
	props := baseProps()
	var applied []core.DeviceProperties
	cfg := DefaultConfig(2)
	c, err := New(cfg, props, func(p core.DeviceProperties) error {
		applied = append(applied, p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	// Stationary warmup.
	for w := 0; w < 20; w++ {
		for dev := 0; dev < 2; dev++ {
			if _, err := c.Observe(windowFrom(dev, props.IndexDisk, props.MetaDisk, props.DataDisk, 0.30, rng)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Regime shift: data reads 2x slower and far burstier, misses up.
	slow := dist.NewGammaMeanSCV(16e-3, 1.6)
	confirmedAt := -1
	for w := 0; w < 8; w++ {
		for dev := 0; dev < 2; dev++ {
			recal, err := c.Observe(windowFrom(dev, props.IndexDisk, props.MetaDisk, slow, 0.45, rng))
			if err != nil {
				t.Fatal(err)
			}
			if recal && confirmedAt < 0 {
				confirmedAt = w
			}
		}
	}
	if confirmedAt < 0 {
		t.Fatal("drift never confirmed")
	}
	if confirmedAt > 4 {
		t.Errorf("drift confirmed at window %d after the shift, want within 5", confirmedAt+1)
	}
	if len(applied) != 1 {
		t.Fatalf("apply called %d times, want 1 (cooldown must debounce)", len(applied))
	}
	st := c.Status()
	if st.Recalibrations != 1 || st.LastFitSource != "refit" {
		t.Errorf("recalibrations=%d source=%q, want 1/refit", st.Recalibrations, st.LastFitSource)
	}
	// The refitted data distribution tracks the new regime's mean and
	// shape; the untouched classes keep their served calibration.
	got := c.Props()
	if m := got.DataDisk.Mean(); m < 12e-3 || m > 20e-3 {
		t.Errorf("refitted data mean %v, want near 16e-3", m)
	}
	scv := got.DataDisk.Variance() / (got.DataDisk.Mean() * got.DataDisk.Mean())
	if scv < 0.9 {
		t.Errorf("refitted data SCV %v, want near 1.6 (burstier than the old 0.4)", scv)
	}
	if got.IndexDisk != props.IndexDisk || got.MetaDisk != props.MetaDisk {
		t.Error("classes without drift evidence must keep their served distributions")
	}
}

// TestMeanDriftRescaleFallback starves the controller of raw samples so a
// confirmed drift must fall back to the §IV-B rescale path.
func TestMeanDriftRescaleFallback(t *testing.T) {
	props := baseProps()
	cfg := DefaultConfig(1)
	var applied []core.DeviceProperties
	c, err := New(cfg, props, func(p core.DeviceProperties) error {
		applied = append(applied, p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(b float64) WindowStats {
		return WindowStats{
			Device:   0,
			Interval: 3,
			Metrics: core.OnlineMetrics{
				Rate: 40, DataRate: 50,
				MissIndex: 0.05, MissMeta: 0.08, MissData: 0.30,
				Procs: 1, DiskMean: b,
			},
		}
	}
	for w := 0; w < 10; w++ {
		if _, err := c.Observe(mk(8e-3)); err != nil {
			t.Fatal(err)
		}
	}
	recals := 0
	for w := 0; w < 6; w++ {
		recal, err := c.Observe(mk(20e-3))
		if err != nil {
			t.Fatal(err)
		}
		if recal {
			recals++
		}
	}
	if recals != 1 || len(applied) != 1 {
		t.Fatalf("recals=%d applied=%d, want exactly one rescale", recals, len(applied))
	}
	if st := c.Status(); st.LastFitSource != "rescale" {
		t.Errorf("fit source %q, want rescale", st.LastFitSource)
	}
	// The rescale preserves shape (SCV) while moving the means up.
	got := applied[0]
	if got.DataDisk.Mean() <= props.DataDisk.Mean()*1.5 {
		t.Errorf("rescaled data mean %v did not track the drifted b", got.DataDisk.Mean())
	}
	oldSCV := props.DataDisk.Variance() / (props.DataDisk.Mean() * props.DataDisk.Mean())
	newSCV := got.DataDisk.Variance() / (got.DataDisk.Mean() * got.DataDisk.Mean())
	if math.Abs(oldSCV-newSCV) > 1e-9 {
		t.Errorf("rescale changed SCV %v -> %v", oldSCV, newSCV)
	}
}

// TestApplyErrorIsSurfacedAndDebounced checks a failing swap is reported,
// counted, and does not re-fire every subsequent window.
func TestApplyErrorIsSurfacedAndDebounced(t *testing.T) {
	props := baseProps()
	boom := errors.New("swap failed")
	calls := 0
	cfg := DefaultConfig(1)
	c, err := New(cfg, props, func(core.DeviceProperties) error {
		calls++
		return boom
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	for w := 0; w < 10; w++ {
		if _, err := c.Observe(windowFrom(0, props.IndexDisk, props.MetaDisk, props.DataDisk, 0.30, rng)); err != nil {
			t.Fatal(err)
		}
	}
	slow := dist.NewGammaMeanSCV(16e-3, 1.6)
	var sawErr bool
	for w := 0; w < 6; w++ {
		_, err := c.Observe(windowFrom(0, props.IndexDisk, props.MetaDisk, slow, 0.45, rng))
		if errors.Is(err, boom) {
			sawErr = true
		}
	}
	if !sawErr {
		t.Fatal("apply error never surfaced")
	}
	if calls != 1 {
		t.Errorf("apply called %d times within the cooldown, want 1", calls)
	}
	st := c.Status()
	if st.ApplyErrors != 1 {
		t.Errorf("applyErrors = %d, want 1", st.ApplyErrors)
	}
	if st.Recalibrations != 0 {
		t.Errorf("recalibrations = %d after failed swap, want 0", st.Recalibrations)
	}
	// The served properties must be unchanged after the failed swap.
	if c.Props().DataDisk != props.DataDisk {
		t.Error("failed apply must not change the served properties")
	}
}

// TestStatusReportsDriftState checks the tri-state is externally visible.
func TestStatusReportsDriftState(t *testing.T) {
	props := baseProps()
	now := time.Unix(1000, 0)
	cfg := DefaultConfig(1)
	cfg.ConfirmWindows = 3
	cfg.Now = func() time.Time { return now }
	c, err := New(cfg, props, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(14))
	for w := 0; w < 10; w++ {
		if _, err := c.Observe(windowFrom(0, props.IndexDisk, props.MetaDisk, props.DataDisk, 0.30, rng)); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Status(); st.Devices[0].State != "stable" {
		t.Fatalf("state %q, want stable", st.Devices[0].State)
	}
	slow := dist.NewGammaMeanSCV(48e-3, 1.6)
	if _, err := c.Observe(windowFrom(0, props.IndexDisk, props.MetaDisk, slow, 0.60, rng)); err != nil {
		t.Fatal(err)
	}
	st := c.Status()
	if st.Devices[0].State != "drifting" {
		t.Fatalf("state %q after one flagged window, want drifting", st.Devices[0].State)
	}
	if st.Devices[0].LastDriftAge != 0 {
		t.Errorf("lastDriftAge = %v, want 0 with a frozen clock", st.Devices[0].LastDriftAge)
	}
	if st.Devices[0].DriftScore < 1 {
		t.Errorf("driftScore = %v on a flagged window, want >= 1", st.Devices[0].DriftScore)
	}
	// Drive to confirmation; afterwards the device cools down.
	for w := 0; w < 3; w++ {
		if _, err := c.Observe(windowFrom(0, props.IndexDisk, props.MetaDisk, slow, 0.60, rng)); err != nil {
			t.Fatal(err)
		}
	}
	st = c.Status()
	if st.Devices[0].State != "recalibrating" {
		t.Errorf("state %q after confirmation, want recalibrating (cooldown)", st.Devices[0].State)
	}
	if st.Recalibrations != 1 {
		t.Errorf("recalibrations = %d, want 1", st.Recalibrations)
	}
}
