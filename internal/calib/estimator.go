package calib

import (
	"cosmodel/internal/core"
	"cosmodel/internal/dist"
)

// ewma is an exponentially weighted mean: the streaming moment tracker
// behind the subsystem's live estimates.
type ewma struct {
	alpha float64
	v     float64
	init  bool
}

func (e *ewma) add(x float64) {
	if !e.init {
		e.v, e.init = x, true
		return
	}
	e.v += e.alpha * (x - e.v)
}

func (e *ewma) value() float64 { return e.v }

// winBuf keeps the raw samples of the most recent max windows, oldest
// evicted whole-window at a time — the population for the K-S shape check.
type winBuf struct {
	wins [][]float64
	max  int
	n    int
}

func newWinBuf(max int) *winBuf { return &winBuf{max: max} }

// add appends one window's samples (empty windows still count for eviction,
// so a quiet class ages out of the buffer rather than pinning stale shape).
func (b *winBuf) add(samples []float64) {
	b.wins = append(b.wins, append([]float64(nil), samples...))
	b.n += len(samples)
	for len(b.wins) > b.max {
		b.n -= len(b.wins[0])
		b.wins[0] = nil
		b.wins = b.wins[1:]
	}
}

func (b *winBuf) count() int { return b.n }

// all concatenates the buffered samples, newest last.
func (b *winBuf) all() []float64 {
	out := make([]float64, 0, b.n)
	for _, w := range b.wins {
		out = append(out, w...)
	}
	return out
}

func (b *winBuf) reset() {
	b.wins = nil
	b.n = 0
}

// estimator holds one device's streaming calibration estimates: EW moments
// of the overall disk service mean and the latency-threshold miss ratio,
// plus per-class rolling raw-sample buffers feeding the live fits and the
// shape check.
type estimator struct {
	diskMean ewma
	missLat  ewma // latency-threshold miss ratio; init only once latencies arrive
	classes  [3]*winBuf
}

func newEstimator(cfg *Config) *estimator {
	e := &estimator{
		diskMean: ewma{alpha: cfg.EWAlpha},
		missLat:  ewma{alpha: cfg.EWAlpha},
	}
	for i := range e.classes {
		e.classes[i] = newWinBuf(cfg.SampleWindows)
	}
	return e
}

// observe absorbs one window. It returns the window's overall mean disk
// service time (0 when the window carried no disk activity).
func (e *estimator) observe(cfg *Config, ws WindowStats) float64 {
	e.classes[0].add(ws.Index)
	e.classes[1].add(ws.Meta)
	e.classes[2].add(ws.Data)
	b := ws.Metrics.DiskMean
	if b <= 0 {
		// Derive it from the window's raw samples when the metrics carry
		// none — the same quantity, measured at the source.
		var sum float64
		var n int
		for _, set := range [][]float64{ws.Index, ws.Meta, ws.Data} {
			for _, v := range set {
				sum += v
			}
			n += len(set)
		}
		if n > 0 {
			b = sum / float64(n)
		}
	}
	if b > 0 {
		e.diskMean.add(b)
	}
	if len(ws.OpLatencies) > 0 {
		e.missLat.add(core.MissRatioByThreshold(ws.OpLatencies, cfg.missThreshold()))
	}
	return b
}

// fit returns the live Gamma fit (Degenerate for constant-rate devices) of
// the buffered samples for one operation class.
func (e *estimator) fit(class int) (dist.Distribution, error) {
	return dist.FitGammaOrDegenerate(e.classes[class].all())
}

// missByLatency returns the EW latency-threshold miss ratio, or -1 before
// any operation latencies were supplied.
func (e *estimator) missByLatency() float64 {
	if !e.missLat.init {
		return -1
	}
	return e.missLat.value()
}

func (e *estimator) reset() {
	for _, b := range e.classes {
		b.reset()
	}
	// The EW moments keep their values: they re-baseline exponentially on
	// the new regime, which is exactly what the cooldown period is for.
}
