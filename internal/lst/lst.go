// Package lst provides the Laplace–Stieltjes transform algebra the analytic
// model is built on. A Transform carries both the transform function
// E[e^{-sX}] and the analytic mean of the underlying nonnegative random
// variable, so that convolution, mixing and Poisson compounding propagate
// means without numerical differentiation. CDFs are recovered by numerical
// inversion (package numeric).
package lst

import (
	"math"
	"math/cmplx"

	"cosmodel/internal/dist"
	"cosmodel/internal/numeric"
)

// Transform is the Laplace–Stieltjes transform of a nonnegative random
// variable together with its mean.
type Transform struct {
	// F evaluates E[e^{-sX}] at complex frequency s.
	F numeric.TransformFunc
	// Mean is E[X].
	Mean float64
}

// One is the transform of the constant 0 (the convolution identity).
func One() Transform {
	return Transform{F: func(complex128) complex128 { return 1 }, Mean: 0}
}

// FromDist wraps a distribution's LST and mean.
func FromDist(d dist.Distribution) Transform {
	return Transform{F: d.LST, Mean: d.Mean()}
}

// Delay is the transform of a deterministic delay c: e^{-s c}.
func Delay(c float64) Transform {
	return Transform{
		F:    func(s complex128) complex128 { return cmplx.Exp(-s * complex(c, 0)) },
		Mean: c,
	}
}

// Convolve returns the transform of the independent sum X₁+…+Xₙ: the product
// of the transforms.
func Convolve(ts ...Transform) Transform {
	switch len(ts) {
	case 0:
		return One()
	case 1:
		return ts[0]
	}
	mean := 0.0
	fs := make([]numeric.TransformFunc, len(ts))
	for i, t := range ts {
		mean += t.Mean
		fs[i] = t.F
	}
	return Transform{
		F: func(s complex128) complex128 {
			p := complex(1, 0)
			for _, f := range fs {
				p *= f(s)
			}
			return p
		},
		Mean: mean,
	}
}

// Mix returns the probabilistic mixture Σ wᵢ·Tᵢ with the given weights
// (which must be nonnegative; they are normalized).
func Mix(ts []Transform, weights []float64) Transform {
	if len(ts) == 0 || len(ts) != len(weights) {
		return One()
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return One()
	}
	mean := 0.0
	norm := make([]float64, len(weights))
	for i, w := range weights {
		norm[i] = w / total
		mean += norm[i] * ts[i].Mean
	}
	local := append([]Transform(nil), ts...)
	return Transform{
		F: func(s complex128) complex128 {
			var sum complex128
			for i, t := range local {
				sum += complex(norm[i], 0) * t.F(s)
			}
			return sum
		},
		Mean: mean,
	}
}

// HitOrMiss returns the transform of the paper's cache-aware operation
// latency: disk latency with probability miss, zero otherwise.
// index(s) = miss·disk(s) + (1-miss).
func HitOrMiss(disk Transform, miss float64) Transform {
	if miss < 0 {
		miss = 0
	}
	if miss > 1 {
		miss = 1
	}
	f := disk.F
	return Transform{
		F: func(s complex128) complex128 {
			return complex(miss, 0)*f(s) + complex(1-miss, 0)
		},
		Mean: miss * disk.Mean,
	}
}

// PoissonCompound returns the transform of Σ_{i=1}^{N} Xᵢ where N is Poisson
// with mean p and the Xᵢ are iid with transform t:
// E[e^{-sΣX}] = e^{p·(t(s)-1)}.
// This is the paper's "extra data reads per union operation" term.
func PoissonCompound(t Transform, p float64) Transform {
	if p <= 0 {
		return One()
	}
	f := t.F
	return Transform{
		F: func(s complex128) complex128 {
			return cmplx.Exp(complex(p, 0) * (f(s) - 1))
		},
		Mean: p * t.Mean,
	}
}

// GeometricCompound returns the transform of Σ_{i=1}^{N} Xᵢ with N geometric
// on {0,1,2,…} with mean p (success prob 1/(1+p)):
// E[e^{-sΣX}] = (1/(1+p)) / (1 - (p/(1+p))·t(s)).
// Provided as an ablation alternative to Poisson compounding.
func GeometricCompound(t Transform, p float64) Transform {
	if p <= 0 {
		return One()
	}
	q := p / (1 + p)
	f := t.F
	return Transform{
		F: func(s complex128) complex128 {
			return complex(1-q, 0) / (1 - complex(q, 0)*f(s))
		},
		Mean: p * t.Mean,
	}
}

// FixedCompound returns the transform of a deterministic number n of iid
// copies: t(s)^n. Provided as an ablation alternative ("fixed mean reads").
func FixedCompound(t Transform, n int) Transform {
	if n <= 0 {
		return One()
	}
	f := t.F
	return Transform{
		F: func(s complex128) complex128 {
			return cmplx.Pow(f(s), complex(float64(n), 0))
		},
		Mean: float64(n) * t.Mean,
	}
}

// CDF evaluates the CDF of the random variable behind t at time x using the
// given inverter, clamped to [0,1].
func CDF(inv numeric.Inverter, t Transform, x float64) float64 {
	return numeric.InvertCDF(inv, t.F, x)
}

// CDFAtNodes evaluates a CDF from precomputed inversion nodes and weights
// (see numeric.NodeInverter): Σ_k Re(w_k · f(s_k)/s_k), clamped to [0,1].
// Given nodes for time x it equals CDF(inv, Transform{F: f}, x); sharing the
// nodes lets an evaluation engine invert many transforms with common factors
// without re-deriving the quadrature.
func CDFAtNodes(s, w []complex128, f numeric.TransformFunc) float64 {
	var sum float64
	for k := range s {
		sum += real(w[k] * (f(s[k]) / s[k]))
	}
	return numeric.Clamp01(sum)
}

// CDFBatch inverts the CDF behind t at every threshold in ts. When inv
// exposes its quadrature (numeric.NodeInverter) one node/weight buffer is
// reused across all thresholds, so evaluating a whole SLA grid pays the
// slice setup once; each entry equals CDF(inv, t, ts[i]) exactly — the
// node-path dot product and Inverter.Invert accumulate in the same order.
func CDFBatch(inv numeric.Inverter, t Transform, ts []float64) []float64 {
	out := make([]float64, len(ts))
	ni, ok := inv.(numeric.NodeInverter)
	if !ok {
		for i, x := range ts {
			out[i] = CDF(inv, t, x)
		}
		return out
	}
	var nodes, ws []complex128
	for i, x := range ts {
		if x <= 0 {
			continue // out[i] stays 0, matching CDF
		}
		nodes, ws = ni.AppendNodes(nodes[:0], ws[:0], x)
		out[i] = CDFAtNodes(nodes, ws, t.F)
	}
	return out
}

// PDF evaluates the density behind t at x using the given inverter. It is
// meaningful only where the distribution is absolutely continuous.
func PDF(inv numeric.Inverter, t Transform, x float64) float64 {
	if x <= 0 {
		return 0
	}
	v := inv.Invert(t.F, x)
	if v < 0 || math.IsNaN(v) {
		return 0
	}
	return v
}

// Quantile inverts the CDF of t numerically: the smallest x with
// CDF(x) >= p, found by bracketed bisection around the mean.
func Quantile(inv numeric.Inverter, t Transform, p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	hi := math.Max(t.Mean, 1e-9)
	for CDF(inv, t, hi) < p {
		hi *= 2
		if hi > 1e12 {
			return math.Inf(1)
		}
	}
	lo := 0.0
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if CDF(inv, t, mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// SecondMomentNumeric estimates E[X²] from the transform by central second
// differences at a step scaled to the mean. Useful for diagnostics (e.g.
// P-K mean waiting); the model itself never requires it.
func SecondMomentNumeric(t Transform) float64 {
	scale := math.Max(t.Mean, 1e-12)
	h := 1e-4 / scale
	f0 := 1.0
	f1 := real(t.F(complex(h, 0)))
	f2 := real(t.F(complex(2*h, 0)))
	return (f2 - 2*f1 + f0) / (h * h)
}
