package lst

import (
	"math"
	"testing"
	"testing/quick"

	"cosmodel/internal/dist"
	"cosmodel/internal/numeric"
)

var inv = numeric.NewEuler()

func TestOneIsIdentity(t *testing.T) {
	one := One()
	if one.Mean != 0 {
		t.Errorf("mean = %v", one.Mean)
	}
	g := FromDist(dist.Gamma{Shape: 2, Rate: 5})
	c := Convolve(one, g, one)
	s := complex(1.2, 0.7)
	if got, want := c.F(s), g.F(s); got != want {
		t.Errorf("convolving with One changed transform: %v vs %v", got, want)
	}
	if c.Mean != g.Mean {
		t.Errorf("mean = %v, want %v", c.Mean, g.Mean)
	}
}

func TestConvolveMeansAdd(t *testing.T) {
	a := FromDist(dist.Exponential{Rate: 2})     // mean .5
	b := FromDist(dist.Gamma{Shape: 3, Rate: 6}) // mean .5
	d := Delay(0.25)
	c := Convolve(a, b, d)
	if math.Abs(c.Mean-1.25) > 1e-12 {
		t.Errorf("mean = %v, want 1.25", c.Mean)
	}
}

func TestConvolveExponentialsIsGamma(t *testing.T) {
	// Sum of two Exp(λ) is Gamma(2, λ).
	e := FromDist(dist.Exponential{Rate: 4})
	sum := Convolve(e, e)
	g := dist.Gamma{Shape: 2, Rate: 4}
	for _, x := range []float64{0.1, 0.3, 0.7, 1.5} {
		got := CDF(inv, sum, x)
		want := g.CDF(x)
		if math.Abs(got-want) > 1e-6 {
			t.Errorf("CDF(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestDelayShiftsCDF(t *testing.T) {
	e := FromDist(dist.Exponential{Rate: 3})
	shifted := Convolve(e, Delay(0.5))
	for _, x := range []float64{0.6, 1.0, 2.0} {
		got := CDF(inv, shifted, x)
		want := 1 - math.Exp(-3*(x-0.5))
		// The delay factor e^{-s/2} makes the inversion integrand
		// oscillatory; a few 1e-3 is the expected Euler accuracy here.
		if math.Abs(got-want) > 5e-3 {
			t.Errorf("CDF(%v) = %v, want %v", x, got, want)
		}
	}
	if got := CDF(inv, shifted, 0.3); got > 0.01 {
		t.Errorf("CDF before delay = %v, want ~0", got)
	}
}

func TestMix(t *testing.T) {
	a := Delay(1)
	b := Delay(3)
	m := Mix([]Transform{a, b}, []float64{1, 3})
	if math.Abs(m.Mean-2.5) > 1e-12 {
		t.Errorf("mean = %v, want 2.5", m.Mean)
	}
	if got := CDF(inv, m, 2); math.Abs(got-0.25) > 1e-3 {
		t.Errorf("CDF(2) = %v, want 0.25", got)
	}
	// Degenerate inputs fall back to One.
	if got := Mix(nil, nil); got.Mean != 0 {
		t.Errorf("empty mix mean = %v", got.Mean)
	}
	if got := Mix([]Transform{a}, []float64{0}); got.Mean != 0 {
		t.Errorf("zero-weight mix mean = %v", got.Mean)
	}
}

func TestHitOrMissMatchesDistMixture(t *testing.T) {
	disk := dist.Gamma{Shape: 2, Rate: 100}
	mix, err := dist.HitOrMiss(disk, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	tr := HitOrMiss(FromDist(disk), 0.3)
	if math.Abs(tr.Mean-mix.Mean()) > 1e-15 {
		t.Errorf("mean = %v, want %v", tr.Mean, mix.Mean())
	}
	s := complex(5, 3)
	if got, want := tr.F(s), mix.LST(s); math.Abs(real(got-want)) > 1e-14 {
		t.Errorf("LST mismatch: %v vs %v", got, want)
	}
	// Clamping.
	if got := HitOrMiss(FromDist(disk), 1.7); math.Abs(got.Mean-disk.Mean()) > 1e-15 {
		t.Errorf("clamped miss mean = %v", got.Mean)
	}
	if got := HitOrMiss(FromDist(disk), -0.5); got.Mean != 0 {
		t.Errorf("clamped miss mean = %v", got.Mean)
	}
}

func TestPoissonCompoundMean(t *testing.T) {
	x := FromDist(dist.Gamma{Shape: 2, Rate: 10}) // mean .2
	c := PoissonCompound(x, 2.5)
	if math.Abs(c.Mean-0.5) > 1e-12 {
		t.Errorf("mean = %v, want 0.5", c.Mean)
	}
	if got := PoissonCompound(x, 0); got.Mean != 0 {
		t.Errorf("p=0 should be One, mean = %v", got.Mean)
	}
	// LST value at 0 must be 1.
	if got := c.F(0); math.Abs(real(got)-1) > 1e-12 {
		t.Errorf("F(0) = %v", got)
	}
}

// TestPoissonCompoundMatchesSeries validates e^{p(t(s)-1)} against the
// truncated series Σ p^j e^{-p}/j! t(s)^j the paper writes out.
func TestPoissonCompoundMatchesSeries(t *testing.T) {
	x := FromDist(dist.Exponential{Rate: 8})
	p := 1.7
	c := PoissonCompound(x, p)
	s := complex(2, 1)
	var series complex128
	term := math.Exp(-p) // p^0 e^-p / 0!
	pow := complex(1, 0)
	for j := 0; j < 60; j++ {
		series += complex(term, 0) * pow
		term *= p / float64(j+1)
		pow *= x.F(s)
	}
	got := c.F(s)
	if math.Abs(real(got-series)) > 1e-12 || math.Abs(imag(got-series)) > 1e-12 {
		t.Errorf("compound = %v, series = %v", got, series)
	}
}

func TestGeometricCompound(t *testing.T) {
	x := FromDist(dist.Exponential{Rate: 4}) // mean .25
	c := GeometricCompound(x, 3)
	if math.Abs(c.Mean-0.75) > 1e-12 {
		t.Errorf("mean = %v, want 0.75", c.Mean)
	}
	if got := c.F(0); math.Abs(real(got)-1) > 1e-12 {
		t.Errorf("F(0) = %v", got)
	}
	if got := GeometricCompound(x, 0); got.Mean != 0 {
		t.Errorf("p=0 mean = %v", got.Mean)
	}
}

func TestFixedCompound(t *testing.T) {
	x := FromDist(dist.Exponential{Rate: 4})
	c := FixedCompound(x, 3)
	if math.Abs(c.Mean-0.75) > 1e-12 {
		t.Errorf("mean = %v, want 0.75", c.Mean)
	}
	// Exp^3 = Gamma(3, 4).
	g := dist.Gamma{Shape: 3, Rate: 4}
	for _, xx := range []float64{0.2, 0.8, 1.5} {
		if got, want := CDF(inv, c, xx), g.CDF(xx); math.Abs(got-want) > 1e-6 {
			t.Errorf("CDF(%v) = %v, want %v", xx, got, want)
		}
	}
	if got := FixedCompound(x, 0); got.Mean != 0 {
		t.Errorf("n=0 mean = %v", got.Mean)
	}
}

func TestQuantileRoundTrip(t *testing.T) {
	g := FromDist(dist.Gamma{Shape: 2.5, Rate: 50})
	for _, p := range []float64{0.1, 0.5, 0.9, 0.99} {
		q := Quantile(inv, g, p)
		if got := CDF(inv, g, q); math.Abs(got-p) > 1e-3 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
	if Quantile(inv, g, 0) != 0 {
		t.Error("Quantile(0) should be 0")
	}
	if !math.IsInf(Quantile(inv, g, 1), 1) {
		t.Error("Quantile(1) should be +Inf")
	}
}

func TestSecondMomentNumeric(t *testing.T) {
	e := FromDist(dist.Exponential{Rate: 2}) // E[X²] = 2/λ² = 0.5
	got := SecondMomentNumeric(e)
	if math.Abs(got-0.5) > 1e-3 {
		t.Errorf("E[X²] = %v, want 0.5", got)
	}
}

func TestPDF(t *testing.T) {
	e := FromDist(dist.Exponential{Rate: 2})
	got := PDF(inv, e, 0.5)
	want := 2 * math.Exp(-1)
	if math.Abs(got-want) > 1e-4 {
		t.Errorf("pdf(0.5) = %v, want %v", got, want)
	}
	if PDF(inv, e, -1) != 0 {
		t.Error("pdf at negative x should be 0")
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	u := Convolve(
		HitOrMiss(FromDist(dist.Gamma{Shape: 2, Rate: 100}), 0.4),
		Delay(0.001),
		PoissonCompound(FromDist(dist.Gamma{Shape: 1.5, Rate: 80}), 0.6),
	)
	f := func(rawA, rawB float64) bool {
		a := math.Mod(math.Abs(rawA), 0.3)
		b := math.Mod(math.Abs(rawB), 0.3)
		if a > b {
			a, b = b, a
		}
		ca, cb := CDF(inv, u, a), CDF(inv, u, b)
		return cb >= ca-1e-6 && ca >= -1e-9 && cb <= 1+1e-9
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestCDFAtNodesMatchesCDF(t *testing.T) {
	u := Convolve(
		HitOrMiss(FromDist(dist.Gamma{Shape: 2, Rate: 100}), 0.4),
		Delay(0.001),
		PoissonCompound(FromDist(dist.Gamma{Shape: 1.5, Rate: 80}), 0.6),
	)
	var ni numeric.NodeInverter = inv
	for _, x := range []float64{0.005, 0.02, 0.1, 0.3} {
		s, w := ni.AppendNodes(nil, nil, x)
		got := CDFAtNodes(s, w, u.F)
		want := CDF(inv, u, x)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("CDFAtNodes(%v) = %v, CDF = %v", x, got, want)
		}
	}
	if got := CDFAtNodes(nil, nil, u.F); got != 0 {
		t.Errorf("CDFAtNodes with no nodes = %v, want 0", got)
	}
}
