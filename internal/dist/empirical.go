package dist

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"sort"
)

// ErrNoSamples reports an attempt to build an empirical distribution from an
// empty sample set.
var ErrNoSamples = errors.New("dist: empirical distribution needs at least one sample")

// Empirical is the empirical distribution of a recorded sample set — the
// "recorded" curves in the paper's Fig. 5 and the observed latency CDFs in
// the evaluation. It owns a sorted copy of the samples.
type Empirical struct {
	sorted []float64
	mean   float64
	m2     float64 // second moment
}

// NewEmpirical builds an empirical distribution from samples.
func NewEmpirical(samples []float64) (*Empirical, error) {
	if len(samples) == 0 {
		return nil, ErrNoSamples
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	var sum, sum2 float64
	for _, v := range s {
		sum += v
		sum2 += v * v
	}
	n := float64(len(s))
	return &Empirical{sorted: s, mean: sum / n, m2: sum2 / n}, nil
}

// Len returns the number of samples.
func (e *Empirical) Len() int { return len(e.sorted) }

// Sorted returns the sorted samples (treat as read-only).
func (e *Empirical) Sorted() []float64 { return e.sorted }

// Mean implements Distribution.
func (e *Empirical) Mean() float64 { return e.mean }

// Variance implements Distribution.
func (e *Empirical) Variance() float64 { return e.m2 - e.mean*e.mean }

// CDF implements Distribution: the right-continuous step function
// #(samples <= x)/n.
func (e *Empirical) CDF(x float64) float64 {
	idx := sort.SearchFloat64s(e.sorted, x)
	// SearchFloat64s returns the first index with sorted[i] >= x; advance
	// over equal values to count samples <= x.
	for idx < len(e.sorted) && e.sorted[idx] == x {
		idx++
	}
	return float64(idx) / float64(len(e.sorted))
}

// Quantile implements Distribution (type-1 / inverse-CDF quantile).
func (e *Empirical) Quantile(p float64) float64 {
	if p < 0 || p > 1 || math.IsNaN(p) {
		return math.NaN()
	}
	if p == 0 {
		return e.sorted[0]
	}
	idx := int(math.Ceil(p*float64(len(e.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(e.sorted) {
		idx = len(e.sorted) - 1
	}
	return e.sorted[idx]
}

// Sample implements Distribution (bootstrap resampling).
func (e *Empirical) Sample(rng *rand.Rand) float64 {
	return e.sorted[rng.Intn(len(e.sorted))]
}

// LST implements Distribution: (1/n) Σ e^{-s·x_i}.
func (e *Empirical) LST(s complex128) complex128 {
	var total complex128
	for _, v := range e.sorted {
		total += cmplx.Exp(-s * complex(v, 0))
	}
	return total / complex(float64(len(e.sorted)), 0)
}

// String implements Distribution.
func (e *Empirical) String() string {
	return fmt.Sprintf("Empirical(n=%d, mean=%g)", len(e.sorted), e.mean)
}

var _ Distribution = (*Empirical)(nil)
