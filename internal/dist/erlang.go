package dist

import (
	"fmt"
	"math/rand"
)

// Erlang is the Erlang distribution: the sum of K iid Exponential(Rate)
// stages. It is the Gamma distribution with integer shape, provided as its
// own type because queueing derivations (M/M/1/K sojourns, phase-type
// fittings) speak in stages.
type Erlang struct {
	K    int     // number of stages, >= 1
	Rate float64 // per-stage rate
}

// AsGamma returns the equivalent Gamma distribution.
func (e Erlang) AsGamma() Gamma {
	return Gamma{Shape: float64(e.K), Rate: e.Rate}
}

// Mean implements Distribution.
func (e Erlang) Mean() float64 { return float64(e.K) / e.Rate }

// Variance implements Distribution.
func (e Erlang) Variance() float64 { return float64(e.K) / (e.Rate * e.Rate) }

// CDF implements Distribution.
func (e Erlang) CDF(x float64) float64 { return e.AsGamma().CDF(x) }

// Quantile implements Distribution.
func (e Erlang) Quantile(p float64) float64 { return e.AsGamma().Quantile(p) }

// Sample implements Distribution by summing exponential stages — exact and
// cheap for small K.
func (e Erlang) Sample(rng *rand.Rand) float64 {
	if e.K > 16 {
		return e.AsGamma().Sample(rng)
	}
	total := 0.0
	for i := 0; i < e.K; i++ {
		total += rng.ExpFloat64() / e.Rate
	}
	return total
}

// LST implements Distribution: (Rate/(s+Rate))^K.
func (e Erlang) LST(s complex128) complex128 { return e.AsGamma().LST(s) }

// String implements Distribution.
func (e Erlang) String() string {
	return fmt.Sprintf("Erlang(k=%d, rate=%g)", e.K, e.Rate)
}

var _ Distribution = Erlang{}
