// Package dist implements the probability distributions used to model
// service times, object sizes and latencies: Gamma, Exponential, Degenerate,
// Normal, Lognormal, Weibull, Uniform, finite Mixtures and Empirical
// distributions, together with fitting routines (method of moments, MLE) and
// Kolmogorov–Smirnov goodness of fit. Every distribution exposes its
// Laplace–Stieltjes transform so the analytic model can operate in the
// transform domain.
package dist

import (
	"math"
	"math/rand"
)

// Distribution is a probability distribution on the real line. The model
// uses nonnegative distributions; Normal is included because the paper's
// calibration step compares it as a candidate fit.
type Distribution interface {
	// Mean returns the expected value.
	Mean() float64
	// Variance returns the variance.
	Variance() float64
	// CDF returns P(X <= x).
	CDF(x float64) float64
	// Quantile returns inf{x : CDF(x) >= p} for p in (0,1).
	Quantile(p float64) float64
	// Sample draws a random variate using rng.
	Sample(rng *rand.Rand) float64
	// LST returns the Laplace–Stieltjes transform E[e^{-sX}] at s.
	// For distributions with support on negatives this is the bilateral
	// transform and may diverge for some s; callers in this module only
	// use LSTs of nonnegative distributions.
	LST(s complex128) complex128
	// String describes the distribution and its parameters.
	String() string
}

// StdDev returns the standard deviation of d.
func StdDev(d Distribution) float64 { return math.Sqrt(d.Variance()) }

// SCV returns the squared coefficient of variation Var/Mean².
func SCV(d Distribution) float64 {
	m := d.Mean()
	if m == 0 {
		return math.Inf(1)
	}
	return d.Variance() / (m * m)
}

// SecondMoment returns E[X²] = Var + Mean².
func SecondMoment(d Distribution) float64 {
	m := d.Mean()
	return d.Variance() + m*m
}

// SampleN draws n variates from d.
func SampleN(d Distribution, rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = d.Sample(rng)
	}
	return out
}

// quantileGrowthCap bounds the geometric bracket growth of
// quantileByBisection: 600 doublings from any positive seed exceed every
// finite float64, so hitting the cap means the CDF never reaches p.
const quantileGrowthCap = 600

// quantileByBisection inverts a CDF numerically on a bracket grown
// geometrically from the mean. It is the shared fallback for distributions
// without a closed-form quantile.
//
// Sentinel: +Inf means no finite bracket captures p — the CDF saturates
// below p (a heavy tail with p → 1, or one numerically clamped short of 1),
// the bracket cannot expand (degenerate moments, e.g. a fitted point mass
// with mean = sd = 0 driven negative by noise), or the CDF returns NaN
// during bracket growth. This matches Quantile(1) for every distribution in
// the package, so callers need no extra case.
func quantileByBisection(cdf func(float64) float64, mean, sd, p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	hi := mean + 2*sd + 1e-12
	if !(hi > 0) {
		// Garbage moments (negative or NaN) would freeze the doubling loop
		// at hi <= 0; restart the bracket from the smallest sensible seed.
		hi = 1e-12
	}
	for i := 0; ; i++ {
		v := cdf(hi)
		if math.IsNaN(v) {
			return math.Inf(1)
		}
		if v >= p {
			break
		}
		hi *= 2
		if i >= quantileGrowthCap || math.IsInf(hi, 1) {
			return math.Inf(1)
		}
	}
	lo := 0.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if cdf(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12*(1+hi) {
			break
		}
	}
	return (lo + hi) / 2
}
