package dist

import (
	"errors"
	"math"
	"testing"
)

// The streaming calibrators feed the fitters tiny and degenerate windows;
// these tests pin the contract they rely on: typed errors (never NaN/Inf
// parameters) and the Degenerate fallback.

func TestFitGammaDegenerateInputs(t *testing.T) {
	cases := []struct {
		name    string
		samples []float64
		want    error
	}{
		{"empty", nil, ErrTooFewSamples},
		{"single", []float64{1e-3}, ErrTooFewSamples},
		{"constant", []float64{2e-3, 2e-3, 2e-3, 2e-3}, ErrZeroVariance},
		{"all zero", []float64{0, 0, 0}, ErrFit},
		{"all negative", []float64{-1, -2, -3}, ErrBadSamples},
		{"nan poisoned", []float64{1e-3, math.NaN(), 2e-3}, ErrBadSamples},
		{"inf poisoned", []float64{1e-3, math.Inf(1), 2e-3}, ErrBadSamples},
		{"one positive among zeros", []float64{0, 0, 5e-3}, ErrTooFewSamples},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, err := FitGamma(tc.samples)
			if err == nil {
				t.Fatalf("FitGamma(%v) = %v, want error", tc.samples, g)
			}
			if !errors.Is(err, tc.want) {
				t.Errorf("FitGamma(%v) error = %v, want %v", tc.samples, err, tc.want)
			}
			if !errors.Is(err, ErrFit) {
				t.Errorf("FitGamma(%v) error %v does not wrap ErrFit", tc.samples, err)
			}
		})
	}
}

func TestFitGammaNearConstantNeverInvalid(t *testing.T) {
	// Variance tiny but nonzero: either a valid finite fit or a typed error,
	// never NaN/Inf parameters.
	samples := []float64{1e-3, 1e-3, 1e-3, 1e-3 + 1e-18}
	g, err := FitGamma(samples)
	if err != nil {
		if !errors.Is(err, ErrFit) {
			t.Fatalf("error %v does not wrap ErrFit", err)
		}
		return
	}
	for _, v := range []float64{g.Shape, g.Rate, g.Mean(), g.Variance()} {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			t.Fatalf("fit produced invalid parameter: %+v", g)
		}
	}
}

func TestFitGammaOrDegenerate(t *testing.T) {
	// Constant window degrades to a point mass at the mean.
	d, err := FitGammaOrDegenerate([]float64{3e-3, 3e-3, 3e-3})
	if err != nil {
		t.Fatal(err)
	}
	if dg, ok := d.(Degenerate); !ok || math.Abs(dg.Value-3e-3) > 1e-15 {
		t.Errorf("constant sample fit = %v, want Degenerate{3e-3}", d)
	}
	// Single positive observation: point mass too.
	d, err = FitGammaOrDegenerate([]float64{7e-3})
	if err != nil {
		t.Fatal(err)
	}
	if dg, ok := d.(Degenerate); !ok || math.Abs(dg.Value-7e-3) > 1e-15 {
		t.Errorf("single sample fit = %v, want Degenerate{7e-3}", d)
	}
	// Healthy sample still fits a Gamma.
	d, err = FitGammaOrDegenerate([]float64{1e-3, 2e-3, 3e-3, 4e-3, 5e-3})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.(Gamma); !ok {
		t.Errorf("varied sample fit = %T, want Gamma", d)
	}
	// Nothing usable at all.
	if _, err := FitGammaOrDegenerate([]float64{0, 0}); !errors.Is(err, ErrFit) {
		t.Errorf("all-zero fallback error = %v, want ErrFit", err)
	}
	if _, err := FitGammaOrDegenerate(nil); !errors.Is(err, ErrFit) {
		t.Errorf("empty fallback error = %v, want ErrFit", err)
	}
	// NaN contamination is not silently repaired.
	if _, err := FitGammaOrDegenerate([]float64{1e-3, math.NaN(), 2e-3}); !errors.Is(err, ErrBadSamples) {
		t.Errorf("NaN fallback error = %v, want ErrBadSamples", err)
	}
}

func TestFitFamiliesTypedErrors(t *testing.T) {
	constant := []float64{1.5, 1.5, 1.5}
	if _, err := FitNormal(constant); !errors.Is(err, ErrZeroVariance) {
		t.Errorf("FitNormal(constant) = %v, want ErrZeroVariance", err)
	}
	if _, err := FitLognormal(constant); !errors.Is(err, ErrZeroVariance) {
		t.Errorf("FitLognormal(constant) = %v, want ErrZeroVariance", err)
	}
	if _, err := FitNormal([]float64{1}); !errors.Is(err, ErrTooFewSamples) {
		t.Errorf("FitNormal(single) = %v, want ErrTooFewSamples", err)
	}
	if _, err := FitExponential(nil); !errors.Is(err, ErrTooFewSamples) {
		t.Errorf("FitExponential(empty) = %v, want ErrTooFewSamples", err)
	}
	if _, err := FitExponential([]float64{math.NaN(), 1}); !errors.Is(err, ErrBadSamples) {
		t.Errorf("FitExponential(NaN) = %v, want ErrBadSamples", err)
	}
	if _, err := FitDegenerate([]float64{math.Inf(1)}); !errors.Is(err, ErrBadSamples) {
		t.Errorf("FitDegenerate(Inf) = %v, want ErrBadSamples", err)
	}
}
