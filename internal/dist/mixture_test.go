package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewMixtureValidation(t *testing.T) {
	g := Gamma{Shape: 2, Rate: 1}
	cases := []struct {
		comps   []Distribution
		weights []float64
	}{
		{nil, nil},
		{[]Distribution{g}, []float64{1, 2}},
		{[]Distribution{g}, []float64{-1}},
		{[]Distribution{g, g}, []float64{0, 0}},
		{[]Distribution{g}, []float64{math.NaN()}},
	}
	for i, c := range cases {
		if _, err := NewMixture(c.comps, c.weights); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestMixtureNormalizesWeights(t *testing.T) {
	m, err := NewMixture(
		[]Distribution{Degenerate{Value: 1}, Degenerate{Value: 3}},
		[]float64{2, 6},
	)
	if err != nil {
		t.Fatal(err)
	}
	if w := m.Weights(); math.Abs(w[0]-0.25) > 1e-15 || math.Abs(w[1]-0.75) > 1e-15 {
		t.Errorf("weights = %v", w)
	}
	if got := m.Mean(); math.Abs(got-2.5) > 1e-15 {
		t.Errorf("mean = %v, want 2.5", got)
	}
}

func TestMixtureVarianceTotalLaw(t *testing.T) {
	// Two degenerate components: variance is purely between-component.
	m, err := NewMixture(
		[]Distribution{Degenerate{Value: 0}, Degenerate{Value: 10}},
		[]float64{0.5, 0.5},
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Variance(); math.Abs(got-25) > 1e-12 {
		t.Errorf("variance = %v, want 25", got)
	}
}

func TestHitOrMiss(t *testing.T) {
	disk := Gamma{Shape: 2, Rate: 100} // mean 0.02
	m, err := HitOrMiss(disk, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Mean(); math.Abs(got-0.005) > 1e-15 {
		t.Errorf("mean = %v, want 0.005", got)
	}
	// CDF has an atom of size 0.75 at zero.
	if got := m.CDF(0); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("CDF(0) = %v, want 0.75", got)
	}
	if _, err := HitOrMiss(disk, 1.5); err == nil {
		t.Error("miss ratio > 1 should fail")
	}
	if _, err := HitOrMiss(disk, -0.1); err == nil {
		t.Error("negative miss ratio should fail")
	}
}

func TestHitOrMissCDFProperty(t *testing.T) {
	disk := Gamma{Shape: 2, Rate: 100}
	f := func(rawMiss, rawX float64) bool {
		miss := math.Mod(math.Abs(rawMiss), 1)
		x := math.Mod(math.Abs(rawX), 0.2)
		m, err := HitOrMiss(disk, miss)
		if err != nil {
			return false
		}
		want := (1 - miss) + miss*disk.CDF(x)
		return math.Abs(m.CDF(x)-want) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMixtureSamplingProportions(t *testing.T) {
	m, err := NewMixture(
		[]Distribution{Degenerate{Value: 1}, Degenerate{Value: 2}},
		[]float64{0.3, 0.7},
	)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	n1 := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if m.Sample(rng) == 1 {
			n1++
		}
	}
	if frac := float64(n1) / n; math.Abs(frac-0.3) > 0.01 {
		t.Errorf("component-1 fraction = %v, want ~0.3", frac)
	}
}

func TestMixtureLSTIsWeightedSum(t *testing.T) {
	a := Exponential{Rate: 3}
	b := Gamma{Shape: 2, Rate: 5}
	m, err := NewMixture([]Distribution{a, b}, []float64{0.4, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	s := complex(1.5, 2.5)
	want := complex(0.4, 0)*a.LST(s) + complex(0.6, 0)*b.LST(s)
	if got := m.LST(s); math.Abs(real(got-want)) > 1e-14 || math.Abs(imag(got-want)) > 1e-14 {
		t.Errorf("LST = %v, want %v", got, want)
	}
}
