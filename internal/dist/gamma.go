package dist

import (
	"fmt"
	"math"
	"math/rand"

	"cosmodel/internal/numeric"
)

// Gamma is the gamma distribution with Shape k and Rate l, the paper's
// distribution of choice for HDD service times (Fig. 5). Its LST is
// (l/(s+l))^k and its mean k/l.
type Gamma struct {
	Shape float64 // k
	Rate  float64 // l
}

// NewGammaMeanSCV returns a Gamma with the given mean and squared
// coefficient of variation: k = 1/scv, l = k/mean.
func NewGammaMeanSCV(mean, scv float64) Gamma {
	k := 1 / scv
	return Gamma{Shape: k, Rate: k / mean}
}

// Mean implements Distribution.
func (g Gamma) Mean() float64 { return g.Shape / g.Rate }

// Variance implements Distribution.
func (g Gamma) Variance() float64 { return g.Shape / (g.Rate * g.Rate) }

// CDF implements Distribution.
func (g Gamma) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return numeric.RegularizedGammaP(g.Shape, g.Rate*x)
}

// Quantile implements Distribution (numeric inversion of the CDF).
func (g Gamma) Quantile(p float64) float64 {
	switch {
	case p < 0 || p > 1 || math.IsNaN(p):
		return math.NaN()
	case p == 0:
		return 0
	case p == 1:
		return math.Inf(1)
	}
	return quantileByBisection(g.CDF, g.Mean(), StdDev(g), p)
}

// Sample implements Distribution using the Marsaglia–Tsang method.
func (g Gamma) Sample(rng *rand.Rand) float64 {
	return sampleGamma(rng, g.Shape) / g.Rate
}

// sampleGamma draws a Gamma(shape, 1) variate (Marsaglia–Tsang, with the
// standard boost for shape < 1).
func sampleGamma(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		// Boost: X ~ Gamma(shape+1) * U^{1/shape}.
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return sampleGamma(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// LST implements Distribution: (l/(s+l))^k. The complex power is
// specialized to its real exponent — exp(k·log|w|)·cis(k·arg w), with
// log|w| taken from the squared magnitude so no hypot/sqrt is needed —
// because this is the hottest leaf of the shared-subexpression evaluation
// engine and cmplx.Pow's general-case branch handling dominates its cost.
// Re(s) > 0 for every inversion contour used here, so |w| <= 1 and the
// squared magnitude cannot overflow.
func (g Gamma) LST(s complex128) complex128 {
	w := complex(g.Rate, 0) / (s + complex(g.Rate, 0))
	re, im := real(w), imag(w)
	logr := 0.5 * math.Log(re*re+im*im)
	sin, cos := math.Sincos(g.Shape * math.Atan2(im, re))
	e := math.Exp(g.Shape * logr)
	return complex(e*cos, e*sin)
}

// String implements Distribution.
func (g Gamma) String() string {
	return fmt.Sprintf("Gamma(shape=%g, rate=%g)", g.Shape, g.Rate)
}
