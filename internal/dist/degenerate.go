package dist

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
)

// Degenerate is a point mass at Value (the Dirac delta δ(x - Value)).
// The paper uses it both for the zero-latency memory hit (δ(t)) and for the
// near-constant request-parsing latency measured on the testbed.
type Degenerate struct {
	Value float64
}

// Mean implements Distribution.
func (d Degenerate) Mean() float64 { return d.Value }

// Variance implements Distribution.
func (d Degenerate) Variance() float64 { return 0 }

// CDF implements Distribution.
func (d Degenerate) CDF(x float64) float64 {
	if x >= d.Value {
		return 1
	}
	return 0
}

// Quantile implements Distribution.
func (d Degenerate) Quantile(p float64) float64 {
	if p <= 0 || p > 1 || math.IsNaN(p) {
		if p <= 0 {
			return d.Value
		}
		return math.NaN()
	}
	return d.Value
}

// Sample implements Distribution.
func (d Degenerate) Sample(*rand.Rand) float64 { return d.Value }

// LST implements Distribution: E[e^{-sX}] = e^{-s·Value}.
func (d Degenerate) LST(s complex128) complex128 {
	return cmplx.Exp(-s * complex(d.Value, 0))
}

// String implements Distribution.
func (d Degenerate) String() string {
	return fmt.Sprintf("Degenerate(%g)", d.Value)
}
