package dist

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// TestInterfaceContract sweeps the common edge-case contract across every
// family: quantile behaviour at and outside the endpoints, parseable String
// output, and basic accessor consistency.
func TestInterfaceContract(t *testing.T) {
	mix, err := HitOrMiss(Gamma{Shape: 2, Rate: 100}, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := NewHyperExpMeanSCV(0.01, 2)
	if err != nil {
		t.Fatal(err)
	}
	emp, err := NewEmpirical([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	all := []Distribution{
		Degenerate{Value: 0.004},
		Exponential{Rate: 120},
		NewExponentialMean(0.01),
		Gamma{Shape: 2.2, Rate: 180},
		Erlang{K: 3, Rate: 100},
		Normal{Mu: 5, Sigma: 2},
		Lognormal{Mu: -5, Sigma: 0.6},
		Uniform{Lo: 0.001, Hi: 0.02},
		Weibull{K: 1.5, Lambda: 0.01},
		Pareto{Xm: 0.001, Alpha: 3},
		mix,
		h2,
		emp,
		Scaled{Base: Gamma{Shape: 3, Rate: 300}, Scale: 2},
	}
	for _, d := range all {
		name := d.String()
		if name == "" || !strings.ContainsAny(name, "(") {
			t.Errorf("%T: String() = %q", d, name)
		}
		// Out-of-range quantiles are NaN.
		for _, p := range []float64{-0.1, 1.1, math.NaN()} {
			if q := d.Quantile(p); !math.IsNaN(q) {
				// Degenerate's Quantile(p<=0) returns the point mass by
				// design; everything else must be NaN.
				if _, ok := d.(Degenerate); ok && p < 0 {
					continue
				}
				t.Errorf("%s: Quantile(%v) = %v, want NaN", name, p, q)
			}
		}
		// Median is finite and within support for every family.
		med := d.Quantile(0.5)
		if math.IsNaN(med) || math.IsInf(med, 0) {
			t.Errorf("%s: median = %v", name, med)
		}
		// Sampling respects the support's sign for nonnegative families.
		if _, isNormal := d.(Normal); !isNormal {
			rng := rand.New(rand.NewSource(3))
			for i := 0; i < 100; i++ {
				if v := d.Sample(rng); v < 0 {
					t.Errorf("%s: negative sample %v", name, v)
					break
				}
			}
		}
	}
}

func TestNewExponentialMean(t *testing.T) {
	e := NewExponentialMean(0.025)
	if math.Abs(e.Mean()-0.025) > 1e-15 {
		t.Errorf("mean = %v", e.Mean())
	}
}

func TestEmpiricalAccessors(t *testing.T) {
	e, err := NewEmpirical([]float64{4, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	s := e.Sorted()
	if len(s) != 3 || s[0] != 1 || s[2] != 4 {
		t.Errorf("sorted = %v", s)
	}
	// Variance of {1,3,4}: mean 8/3, var = (49+1+16)/9... compute directly.
	mean := 8.0 / 3
	want := ((1-mean)*(1-mean) + (3-mean)*(3-mean) + (4-mean)*(4-mean)) / 3
	if math.Abs(e.Variance()-want) > 1e-12 {
		t.Errorf("variance = %v, want %v", e.Variance(), want)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		v := e.Sample(rng)
		if v != 1 && v != 3 && v != 4 {
			t.Fatalf("bootstrap sample %v not in data", v)
		}
	}
}

func TestMixtureComponents(t *testing.T) {
	a, b := Degenerate{Value: 1}, Degenerate{Value: 2}
	m, err := NewMixture([]Distribution{a, b}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Components(); len(got) != 2 {
		t.Errorf("components = %v", got)
	}
}

func TestErlangQuantile(t *testing.T) {
	e := Erlang{K: 2, Rate: 10}
	q := e.Quantile(0.9)
	if math.Abs(e.CDF(q)-0.9) > 1e-9 {
		t.Errorf("CDF(Quantile(0.9)) = %v", e.CDF(q))
	}
}

func TestNormalAccessors(t *testing.T) {
	n := Normal{Mu: 3, Sigma: 2}
	if n.Mean() != 3 || n.Variance() != 4 {
		t.Errorf("moments: %v %v", n.Mean(), n.Variance())
	}
	if q := n.Quantile(0.5); math.Abs(q-3) > 1e-12 {
		t.Errorf("median = %v", q)
	}
	// Bilateral transform at s=0 is 1.
	if got := n.LST(0); got != 1 {
		t.Errorf("LST(0) = %v", got)
	}
}
