package dist

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
)

// Uniform is the continuous uniform distribution on [Lo, Hi].
type Uniform struct {
	Lo, Hi float64
}

// Mean implements Distribution.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// Variance implements Distribution.
func (u Uniform) Variance() float64 {
	w := u.Hi - u.Lo
	return w * w / 12
}

// CDF implements Distribution.
func (u Uniform) CDF(x float64) float64 {
	switch {
	case x <= u.Lo:
		return 0
	case x >= u.Hi:
		return 1
	}
	return (x - u.Lo) / (u.Hi - u.Lo)
}

// Quantile implements Distribution.
func (u Uniform) Quantile(p float64) float64 {
	if p < 0 || p > 1 || math.IsNaN(p) {
		return math.NaN()
	}
	return u.Lo + p*(u.Hi-u.Lo)
}

// Sample implements Distribution.
func (u Uniform) Sample(rng *rand.Rand) float64 {
	return u.Lo + rng.Float64()*(u.Hi-u.Lo)
}

// LST implements Distribution. The textbook form
// (e^{-s·Lo} - e^{-s·Hi}) / (s (Hi-Lo)) cancels catastrophically for small
// |s|, so it is evaluated as e^{-s·mid} · sinh(z)/z with z = s·width/2 and a
// Taylor series near z = 0.
func (u Uniform) LST(s complex128) complex128 {
	mid := complex((u.Lo+u.Hi)/2, 0)
	z := s * complex((u.Hi-u.Lo)/2, 0)
	var sinhc complex128
	if cmplx.Abs(z) < 1e-3 {
		z2 := z * z
		sinhc = 1 + z2/6 + z2*z2/120
	} else {
		sinhc = cmplx.Sinh(z) / z
	}
	return cmplx.Exp(-s*mid) * sinhc
}

// String implements Distribution.
func (u Uniform) String() string {
	return fmt.Sprintf("Uniform(%g, %g)", u.Lo, u.Hi)
}

var _ Distribution = Uniform{}
