package dist

import (
	"fmt"
	"math/cmplx"
	"math/rand"

	"cosmodel/internal/numeric"
)

// Normal is the normal distribution with mean Mu and standard deviation
// Sigma. It participates in the calibration step as a candidate fit for disk
// service times (the paper tests Exponential, Degenerate, Normal and Gamma
// and finds Gamma best). Its bilateral transform e^{-sμ + s²σ²/2} is exact
// but, unlike the nonnegative distributions, does not correspond to a
// nonnegative random variable.
type Normal struct {
	Mu    float64
	Sigma float64
}

// Mean implements Distribution.
func (n Normal) Mean() float64 { return n.Mu }

// Variance implements Distribution.
func (n Normal) Variance() float64 { return n.Sigma * n.Sigma }

// CDF implements Distribution.
func (n Normal) CDF(x float64) float64 {
	return numeric.NormalCDF((x - n.Mu) / n.Sigma)
}

// Quantile implements Distribution.
func (n Normal) Quantile(p float64) float64 {
	return n.Mu + n.Sigma*numeric.NormalQuantile(p)
}

// Sample implements Distribution.
func (n Normal) Sample(rng *rand.Rand) float64 {
	return n.Mu + n.Sigma*rng.NormFloat64()
}

// LST implements Distribution (bilateral transform).
func (n Normal) LST(s complex128) complex128 {
	return cmplx.Exp(-s*complex(n.Mu, 0) + s*s*complex(n.Sigma*n.Sigma/2, 0))
}

// String implements Distribution.
func (n Normal) String() string {
	return fmt.Sprintf("Normal(mu=%g, sigma=%g)", n.Mu, n.Sigma)
}

var (
	_ Distribution = Normal{}
	_ Distribution = Gamma{}
	_ Distribution = Exponential{}
	_ Distribution = Degenerate{}
)
