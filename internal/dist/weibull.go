package dist

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"cosmodel/internal/numeric"
)

// Weibull is the Weibull distribution with shape K and scale Lambda. It is
// provided as an alternative heavy-ish-tailed service-time family for
// what-if analyses; its LST is evaluated numerically.
type Weibull struct {
	K      float64 // shape
	Lambda float64 // scale
}

// Mean implements Distribution.
func (w Weibull) Mean() float64 {
	return w.Lambda * math.Gamma(1+1/w.K)
}

// Variance implements Distribution.
func (w Weibull) Variance() float64 {
	g1 := math.Gamma(1 + 1/w.K)
	g2 := math.Gamma(1 + 2/w.K)
	return w.Lambda * w.Lambda * (g2 - g1*g1)
}

// CDF implements Distribution.
func (w Weibull) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return -math.Expm1(-math.Pow(x/w.Lambda, w.K))
}

// Quantile implements Distribution.
func (w Weibull) Quantile(p float64) float64 {
	switch {
	case p < 0 || p > 1 || math.IsNaN(p):
		return math.NaN()
	case p == 1:
		return math.Inf(1)
	}
	return w.Lambda * math.Pow(-math.Log1p(-p), 1/w.K)
}

// Sample implements Distribution (inverse transform).
func (w Weibull) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return w.Quantile(u)
}

// LST implements Distribution by quantile-substituted numerical integration.
func (w Weibull) LST(s complex128) complex128 {
	re := numeric.IntegrateAdaptive(func(u float64) float64 {
		return real(cmplx.Exp(-s * complex(w.Quantile(u), 0)))
	}, 1e-9, 1-1e-9, 1e-9)
	im := numeric.IntegrateAdaptive(func(u float64) float64 {
		return imag(cmplx.Exp(-s * complex(w.Quantile(u), 0)))
	}, 1e-9, 1-1e-9, 1e-9)
	return complex(re, im)
}

// String implements Distribution.
func (w Weibull) String() string {
	return fmt.Sprintf("Weibull(k=%g, lambda=%g)", w.K, w.Lambda)
}

var _ Distribution = Weibull{}
