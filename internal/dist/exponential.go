package dist

import (
	"fmt"
	"math"
	"math/rand"
)

// Exponential is the exponential distribution with the given Rate (λ).
type Exponential struct {
	Rate float64
}

// NewExponentialMean returns an Exponential with the given mean.
func NewExponentialMean(mean float64) Exponential {
	return Exponential{Rate: 1 / mean}
}

// Mean implements Distribution.
func (e Exponential) Mean() float64 { return 1 / e.Rate }

// Variance implements Distribution.
func (e Exponential) Variance() float64 { return 1 / (e.Rate * e.Rate) }

// CDF implements Distribution.
func (e Exponential) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return -math.Expm1(-e.Rate * x)
}

// Quantile implements Distribution.
func (e Exponential) Quantile(p float64) float64 {
	switch {
	case p < 0 || p > 1 || math.IsNaN(p):
		return math.NaN()
	case p == 1:
		return math.Inf(1)
	}
	return -math.Log1p(-p) / e.Rate
}

// Sample implements Distribution.
func (e Exponential) Sample(rng *rand.Rand) float64 {
	return rng.ExpFloat64() / e.Rate
}

// LST implements Distribution: λ/(s+λ).
func (e Exponential) LST(s complex128) complex128 {
	l := complex(e.Rate, 0)
	return l / (s + l)
}

// String implements Distribution.
func (e Exponential) String() string {
	return fmt.Sprintf("Exponential(rate=%g)", e.Rate)
}
