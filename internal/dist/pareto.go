package dist

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"cosmodel/internal/numeric"
)

// Pareto is the Pareto (type I) distribution with scale Xm > 0 and shape
// Alpha > 0: P(X > x) = (Xm/x)^Alpha for x >= Xm. It models genuinely
// heavy-tailed service or size phenomena; note that moments above order
// Alpha diverge, which the accessors report as +Inf.
type Pareto struct {
	Xm    float64 // scale (minimum value)
	Alpha float64 // tail index
}

// Mean implements Distribution: Alpha·Xm/(Alpha-1) for Alpha > 1, else +Inf.
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}

// Variance implements Distribution; +Inf for Alpha <= 2.
func (p Pareto) Variance() float64 {
	if p.Alpha <= 2 {
		return math.Inf(1)
	}
	a := p.Alpha
	return p.Xm * p.Xm * a / ((a - 1) * (a - 1) * (a - 2))
}

// CDF implements Distribution.
func (p Pareto) CDF(x float64) float64 {
	if x <= p.Xm {
		return 0
	}
	return 1 - math.Pow(p.Xm/x, p.Alpha)
}

// Quantile implements Distribution.
func (p Pareto) Quantile(q float64) float64 {
	switch {
	case q < 0 || q > 1 || math.IsNaN(q):
		return math.NaN()
	case q == 1:
		return math.Inf(1)
	}
	return p.Xm / math.Pow(1-q, 1/p.Alpha)
}

// Sample implements Distribution (inverse transform).
func (p Pareto) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return p.Xm / math.Pow(u, 1/p.Alpha)
}

// LST implements Distribution by quantile-substituted numerical
// integration; like the other closed-form-free families it is kept off the
// model's hot path.
func (p Pareto) LST(s complex128) complex128 {
	// Truncate the unit interval slightly below 1: the integrand decays
	// like e^{-s·q(u)} and the far tail contributes ~e^{-s·large}.
	re := numeric.IntegrateAdaptive(func(u float64) float64 {
		return real(cmplx.Exp(-s * complex(p.Quantile(u), 0)))
	}, 0, 1-1e-9, 1e-9)
	im := numeric.IntegrateAdaptive(func(u float64) float64 {
		return imag(cmplx.Exp(-s * complex(p.Quantile(u), 0)))
	}, 0, 1-1e-9, 1e-9)
	return complex(re, im)
}

// String implements Distribution.
func (p Pareto) String() string {
	return fmt.Sprintf("Pareto(xm=%g, alpha=%g)", p.Xm, p.Alpha)
}

var _ Distribution = Pareto{}
