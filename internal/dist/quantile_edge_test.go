package dist

import (
	"math"
	"testing"
)

// TestQuantileBisectionDegenerateMoments pins the bracket-growth fix: a CDF
// paired with garbage moments (mean + 2sd + 1e-12 <= 0, e.g. a fitted
// point mass driven negative by noise) used to freeze the doubling loop at
// hi <= 0 forever; it must now terminate, and still find the root when one
// exists.
func TestQuantileBisectionDegenerateMoments(t *testing.T) {
	// Exponential CDF with rate 2, but moments claiming mean = sd = 0.
	cdf := func(x float64) float64 {
		if x <= 0 {
			return 0
		}
		return 1 - math.Exp(-2*x)
	}
	got := quantileByBisection(cdf, 0, 0, 0.5)
	want := math.Log(2) / 2
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("median from zero moments = %v, want %v", got, want)
	}
	// Negative mean (noise-driven) must not loop either.
	if got := quantileByBisection(cdf, -3, 0, 0.5); math.Abs(got-want) > 1e-9 {
		t.Errorf("median from negative mean = %v, want %v", got, want)
	}
}

// TestQuantileBisectionSaturatingCDF pins the +Inf sentinel: a CDF that
// saturates below p (numerically clamped heavy tail) must report +Inf
// after the capped growth, not spin doubling forever.
func TestQuantileBisectionSaturatingCDF(t *testing.T) {
	cdf := func(x float64) float64 {
		if x <= 0 {
			return 0
		}
		return math.Min(1-math.Exp(-x), 0.9)
	}
	if got := quantileByBisection(cdf, 1, 1, 0.95); !math.IsInf(got, 1) {
		t.Errorf("saturating CDF p=0.95: got %v, want +Inf", got)
	}
	// Below the saturation level the quantile is still finite and exact.
	want := -math.Log(0.5)
	if got := quantileByBisection(cdf, 1, 1, 0.5); math.Abs(got-want) > 1e-9 {
		t.Errorf("saturating CDF p=0.5: got %v, want %v", got, want)
	}
}

// TestQuantileBisectionNaNCDF pins the NaN guard: a CDF emitting NaN during
// bracket growth reports the +Inf sentinel instead of doubling blindly
// (NaN fails every comparison, so without the guard the loop would run to
// the cap on garbage).
func TestQuantileBisectionNaNCDF(t *testing.T) {
	if got := quantileByBisection(func(float64) float64 { return math.NaN() }, 1, 1, 0.5); !math.IsInf(got, 1) {
		t.Errorf("NaN CDF: got %v, want +Inf", got)
	}
}

// TestQuantileDegenerateDistributions drives the shared bisection through
// the public Quantile of near-degenerate fitted shapes.
func TestQuantileDegenerateDistributions(t *testing.T) {
	// A Gamma squeezed to an (almost) point mass at ~1e-9: the quantile
	// must come back near the mass, finite, without hanging.
	g := NewGammaMeanSCV(1e-9, 1e-6)
	q := g.Quantile(0.5)
	if math.IsNaN(q) || math.IsInf(q, 0) || q < 0 || q > 1e-6 {
		t.Errorf("point-mass Gamma median = %v", q)
	}
	// p -> 1 on a heavy-ish tail stays finite (the CDF genuinely reaches
	// p); exactly 1 is the documented +Inf.
	if q := g.Quantile(1); !math.IsInf(q, 1) {
		t.Errorf("Quantile(1) = %v, want +Inf", q)
	}
}
