package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cosmodel/internal/numeric"
)

func TestParetoMoments(t *testing.T) {
	p := Pareto{Xm: 2, Alpha: 3}
	if got, want := p.Mean(), 3.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("mean = %v, want %v", got, want)
	}
	// Var = Xm²·α/((α-1)²(α-2)) = 4·3/(2²·1) = 3.
	if got, want := p.Variance(), 3.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("variance = %v, want %v", got, want)
	}
	if !math.IsInf(Pareto{Xm: 1, Alpha: 0.9}.Mean(), 1) {
		t.Error("alpha<=1 mean should be +Inf")
	}
	if !math.IsInf(Pareto{Xm: 1, Alpha: 1.5}.Variance(), 1) {
		t.Error("alpha<=2 variance should be +Inf")
	}
}

func TestParetoCDFQuantile(t *testing.T) {
	p := Pareto{Xm: 1, Alpha: 2.5}
	if got := p.CDF(0.5); got != 0 {
		t.Errorf("CDF below xm = %v", got)
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		x := p.Quantile(q)
		if math.Abs(p.CDF(x)-q) > 1e-12 {
			t.Errorf("CDF(Quantile(%v)) = %v", q, p.CDF(x))
		}
	}
	if !math.IsInf(p.Quantile(1), 1) {
		t.Error("Quantile(1) should be +Inf")
	}
}

func TestParetoSampling(t *testing.T) {
	p := Pareto{Xm: 1, Alpha: 3.5}
	rng := rand.New(rand.NewSource(3))
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := p.Sample(rng)
		if v < p.Xm {
			t.Fatalf("sample %v below xm", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-p.Mean())/p.Mean() > 0.02 {
		t.Errorf("sample mean %v, want %v", mean, p.Mean())
	}
}

func TestParetoLSTAtZero(t *testing.T) {
	p := Pareto{Xm: 0.001, Alpha: 2.5}
	if got := p.LST(0); math.Abs(real(got)-1) > 1e-6 {
		t.Errorf("LST(0) = %v", got)
	}
}

func TestErlangMatchesGamma(t *testing.T) {
	e := Erlang{K: 3, Rate: 50}
	g := e.AsGamma()
	if e.Mean() != g.Mean() || e.Variance() != g.Variance() {
		t.Error("moments disagree with Gamma")
	}
	for _, x := range []float64{0.01, 0.05, 0.1, 0.2} {
		if math.Abs(e.CDF(x)-g.CDF(x)) > 1e-14 {
			t.Errorf("CDF(%v) disagrees", x)
		}
	}
	s := complex(3, 2)
	if e.LST(s) != g.LST(s) {
		t.Error("LST disagrees")
	}
}

func TestErlangSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, k := range []int{1, 4, 32} { // 32 exercises the Gamma fallback
		e := Erlang{K: k, Rate: 100}
		var sum, sum2 float64
		const n = 100000
		for i := 0; i < n; i++ {
			v := e.Sample(rng)
			sum += v
			sum2 += v * v
		}
		mean := sum / n
		if math.Abs(mean-e.Mean())/e.Mean() > 0.02 {
			t.Errorf("K=%d: sample mean %v, want %v", k, mean, e.Mean())
		}
		variance := sum2/n - mean*mean
		if math.Abs(variance-e.Variance())/e.Variance() > 0.06 {
			t.Errorf("K=%d: sample variance %v, want %v", k, variance, e.Variance())
		}
	}
}

func TestNewHyperExpValidation(t *testing.T) {
	cases := []struct{ rates, weights []float64 }{
		{nil, nil},
		{[]float64{1}, []float64{1, 2}},
		{[]float64{-1}, []float64{1}},
		{[]float64{1}, []float64{-1}},
		{[]float64{1, 2}, []float64{0, 0}},
		{[]float64{math.NaN()}, []float64{1}},
	}
	for i, c := range cases {
		if _, err := NewHyperExp(c.rates, c.weights); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestHyperExpMeanSCVMatch(t *testing.T) {
	for _, c := range []struct{ mean, scv float64 }{
		{0.01, 1}, {0.01, 2}, {0.5, 4}, {2, 10},
	} {
		h, err := NewHyperExpMeanSCV(c.mean, c.scv)
		if err != nil {
			t.Fatalf("mean=%v scv=%v: %v", c.mean, c.scv, err)
		}
		if math.Abs(h.Mean()-c.mean)/c.mean > 1e-10 {
			t.Errorf("mean = %v, want %v", h.Mean(), c.mean)
		}
		if math.Abs(SCV(h)-c.scv)/c.scv > 1e-10 {
			t.Errorf("scv = %v, want %v", SCV(h), c.scv)
		}
	}
	if _, err := NewHyperExpMeanSCV(1, 0.5); err == nil {
		t.Error("scv < 1 should fail")
	}
	if _, err := NewHyperExpMeanSCV(0, 2); err == nil {
		t.Error("mean <= 0 should fail")
	}
}

func TestHyperExpDegeneratesToExponential(t *testing.T) {
	h, err := NewHyperExpMeanSCV(0.02, 1)
	if err != nil {
		t.Fatal(err)
	}
	e := Exponential{Rate: 50}
	for _, x := range []float64{0.005, 0.02, 0.08} {
		if math.Abs(h.CDF(x)-e.CDF(x)) > 1e-9 {
			t.Errorf("CDF(%v) = %v, want %v", x, h.CDF(x), e.CDF(x))
		}
	}
}

func TestHyperExpLSTInversion(t *testing.T) {
	h, err := NewHyperExpMeanSCV(0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	inv := numeric.NewEuler()
	for _, p := range []float64{0.2, 0.5, 0.9} {
		x := h.Quantile(p)
		got := numeric.InvertCDF(inv, h.LST, x)
		if math.Abs(got-p) > 1e-4 {
			t.Errorf("inverted CDF at q%v = %v", p, got)
		}
	}
	if h.Branches() != 2 {
		t.Errorf("branches = %d", h.Branches())
	}
	if s := h.String(); s == "" {
		t.Error("empty String()")
	}
}

func TestHyperExpSampling(t *testing.T) {
	h, err := NewHyperExpMeanSCV(0.01, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	var sum, sum2 float64
	const n = 300000
	for i := 0; i < n; i++ {
		v := h.Sample(rng)
		if v < 0 {
			t.Fatal("negative sample")
		}
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	if math.Abs(mean-h.Mean())/h.Mean() > 0.02 {
		t.Errorf("sample mean %v, want %v", mean, h.Mean())
	}
	scv := (sum2/n - mean*mean) / (mean * mean)
	if math.Abs(scv-4)/4 > 0.1 {
		t.Errorf("sample scv %v, want 4", scv)
	}
}

// TestHyperExpSCVAlwaysAtLeastOne: the defining property of the family.
func TestHyperExpSCVAlwaysAtLeastOne(t *testing.T) {
	f := func(r1, r2, w raw) bool {
		rates := []float64{0.1 + math.Abs(float64(r1)), 0.1 + math.Abs(float64(r2))}
		weights := []float64{0.1 + math.Abs(float64(w)), 1}
		h, err := NewHyperExp(rates, weights)
		if err != nil {
			return false
		}
		return SCV(h) >= 1-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// raw keeps testing/quick's generated magnitudes bounded.
type raw int16
