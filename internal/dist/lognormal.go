package dist

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"cosmodel/internal/numeric"
)

// Lognormal is the lognormal distribution: log X ~ Normal(Mu, Sigma²). It is
// used for synthetic object sizes (the Wikipedia media objects are small and
// heavily right-skewed). Its LST has no closed form and is evaluated by
// numerical integration; the model itself never needs it on the hot path.
type Lognormal struct {
	Mu    float64
	Sigma float64
}

// NewLognormalMeanMedian returns a Lognormal with the given mean and median
// (mean > median > 0 required): median = e^μ, mean = e^{μ+σ²/2}.
func NewLognormalMeanMedian(mean, median float64) Lognormal {
	mu := math.Log(median)
	sigma := math.Sqrt(2 * (math.Log(mean) - mu))
	return Lognormal{Mu: mu, Sigma: sigma}
}

// Mean implements Distribution.
func (l Lognormal) Mean() float64 {
	return math.Exp(l.Mu + l.Sigma*l.Sigma/2)
}

// Variance implements Distribution.
func (l Lognormal) Variance() float64 {
	s2 := l.Sigma * l.Sigma
	return (math.Exp(s2) - 1) * math.Exp(2*l.Mu+s2)
}

// CDF implements Distribution.
func (l Lognormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return numeric.NormalCDF((math.Log(x) - l.Mu) / l.Sigma)
}

// Quantile implements Distribution.
func (l Lognormal) Quantile(p float64) float64 {
	switch {
	case p < 0 || p > 1 || math.IsNaN(p):
		return math.NaN()
	case p == 0:
		return 0
	case p == 1:
		return math.Inf(1)
	}
	return math.Exp(l.Mu + l.Sigma*numeric.NormalQuantile(p))
}

// Sample implements Distribution.
func (l Lognormal) Sample(rng *rand.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*rng.NormFloat64())
}

// LST implements Distribution by numerical integration of
// ∫ e^{-sx} dF(x) over the quantile-transformed unit interval.
func (l Lognormal) LST(s complex128) complex128 {
	// Substitute x = Quantile(u): E[e^{-sX}] = ∫_0^1 e^{-s q(u)} du.
	re := numeric.IntegrateAdaptive(func(u float64) float64 {
		q := l.Quantile(u)
		return real(cmplx.Exp(-s * complex(q, 0)))
	}, 1e-9, 1-1e-9, 1e-9)
	im := numeric.IntegrateAdaptive(func(u float64) float64 {
		q := l.Quantile(u)
		return imag(cmplx.Exp(-s * complex(q, 0)))
	}, 1e-9, 1-1e-9, 1e-9)
	return complex(re, im)
}

// String implements Distribution.
func (l Lognormal) String() string {
	return fmt.Sprintf("Lognormal(mu=%g, sigma=%g)", l.Mu, l.Sigma)
}

var _ Distribution = Lognormal{}
