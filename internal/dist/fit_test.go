package dist

import (
	"math"
	"math/rand"
	"testing"
)

func TestFitGammaRecoversParameters(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	truth := Gamma{Shape: 2.3, Rate: 150}
	samples := SampleN(truth, rng, 50000)
	got, err := FitGamma(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Shape-truth.Shape)/truth.Shape > 0.05 {
		t.Errorf("shape = %v, want %v", got.Shape, truth.Shape)
	}
	if math.Abs(got.Mean()-truth.Mean())/truth.Mean() > 0.02 {
		t.Errorf("mean = %v, want %v", got.Mean(), truth.Mean())
	}
}

func TestFitGammaSkipsNonPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	truth := Gamma{Shape: 3, Rate: 10}
	samples := SampleN(truth, rng, 20000)
	samples = append(samples, 0, 0, 0) // zeros from cache hits must not break MLE
	if _, err := FitGamma(samples); err != nil {
		t.Fatal(err)
	}
}

func TestFitExponentialRecoversRate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	truth := Exponential{Rate: 80}
	got, err := FitExponential(SampleN(truth, rng, 50000))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Rate-truth.Rate)/truth.Rate > 0.02 {
		t.Errorf("rate = %v, want %v", got.Rate, truth.Rate)
	}
}

func TestFitNormalRecoversParameters(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	truth := Normal{Mu: 5, Sigma: 2}
	got, err := FitNormal(SampleN(truth, rng, 50000))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Mu-5) > 0.05 || math.Abs(got.Sigma-2) > 0.05 {
		t.Errorf("got %v", got)
	}
}

func TestFitLognormal(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	truth := Lognormal{Mu: 10, Sigma: 1.2}
	got, err := FitLognormal(SampleN(truth, rng, 50000))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Mu-10) > 0.05 || math.Abs(got.Sigma-1.2) > 0.05 {
		t.Errorf("got %v", got)
	}
}

func TestFitErrorsOnEmptyOrDegenerateData(t *testing.T) {
	if _, err := FitGamma(nil); err == nil {
		t.Error("FitGamma(nil) should fail")
	}
	if _, err := FitExponential(nil); err == nil {
		t.Error("FitExponential(nil) should fail")
	}
	if _, err := FitNormal([]float64{1}); err == nil {
		t.Error("FitNormal with one sample should fail")
	}
	if _, err := FitGamma([]float64{0, 0, 0}); err == nil {
		t.Error("FitGamma on zeros should fail")
	}
	if _, err := FitDegenerate(nil); err == nil {
		t.Error("FitDegenerate(nil) should fail")
	}
	if _, err := FitLognormal([]float64{-1, -2}); err == nil {
		t.Error("FitLognormal on negatives should fail")
	}
	if _, err := FitBest(nil); err == nil {
		t.Error("FitBest(nil) should fail")
	}
}

func TestKolmogorovSmirnovPerfectFit(t *testing.T) {
	// K-S of a sample against its own empirical CDF family should be small
	// for a good parametric fit and large for a bad one.
	rng := rand.New(rand.NewSource(17))
	truth := Gamma{Shape: 2.5, Rate: 100}
	samples := SampleN(truth, rng, 20000)
	good := KolmogorovSmirnov(samples, truth)
	bad := KolmogorovSmirnov(samples, Exponential{Rate: 1 / truth.Mean()})
	if good > 0.02 {
		t.Errorf("K-S against truth = %v, want small", good)
	}
	if bad < 5*good {
		t.Errorf("K-S against wrong family = %v, not clearly worse than %v", bad, good)
	}
	if !math.IsNaN(KolmogorovSmirnov(nil, truth)) {
		t.Error("K-S of empty sample should be NaN")
	}
}

// TestFitBestPrefersGammaForGammaData mirrors the paper's Fig. 5 finding:
// among Exponential, Degenerate, Normal and Gamma, the Gamma family fits
// disk-like (gamma-generated) service times best.
func TestFitBestPrefersGammaForGammaData(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	truth := Gamma{Shape: 2.0, Rate: 120}
	samples := SampleN(truth, rng, 30000)
	results, err := FitBest(samples)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Name != "gamma" {
		for _, r := range results {
			t.Logf("%s: KS=%v", r.Name, r.KS)
		}
		t.Errorf("best fit = %s, want gamma", results[0].Name)
	}
}

func TestEmpiricalDistribution(t *testing.T) {
	e, err := NewEmpirical([]float64{3, 1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if e.Len() != 4 {
		t.Fatalf("len = %d", e.Len())
	}
	if got := e.Mean(); math.Abs(got-2) > 1e-15 {
		t.Errorf("mean = %v", got)
	}
	if got := e.CDF(2); math.Abs(got-0.75) > 1e-15 {
		t.Errorf("CDF(2) = %v, want 0.75", got)
	}
	if got := e.CDF(0.5); got != 0 {
		t.Errorf("CDF(0.5) = %v, want 0", got)
	}
	if got := e.CDF(3); got != 1 {
		t.Errorf("CDF(3) = %v, want 1", got)
	}
	if got := e.Quantile(0.5); got != 2 {
		t.Errorf("median = %v, want 2", got)
	}
	if got := e.Quantile(0); got != 1 {
		t.Errorf("q0 = %v, want 1", got)
	}
	if got := e.Quantile(1); got != 3 {
		t.Errorf("q1 = %v, want 3", got)
	}
	if _, err := NewEmpirical(nil); err == nil {
		t.Error("empty empirical should fail")
	}
}

func TestEmpiricalLSTMatchesMean(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	e, err := NewEmpirical(SampleN(Exponential{Rate: 50}, rng, 500))
	if err != nil {
		t.Fatal(err)
	}
	// LST(0) = 1.
	if got := e.LST(0); math.Abs(real(got)-1) > 1e-12 {
		t.Errorf("LST(0) = %v", got)
	}
}
