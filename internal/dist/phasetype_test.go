package dist

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFitPhaseTypeBranches(t *testing.T) {
	// scv == 1: exponential.
	d, err := FitPhaseType(0.02, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.(Exponential); !ok {
		t.Errorf("scv=1 gave %T", d)
	}
	// scv = 0.25: Erlang-4.
	d, err = FitPhaseType(0.02, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := d.(Erlang); !ok || e.K != 4 {
		t.Errorf("scv=0.25 gave %v", d)
	}
	// scv = 0.3: generalized (Gamma).
	d, err = FitPhaseType(0.02, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.(Gamma); !ok {
		t.Errorf("scv=0.3 gave %T", d)
	}
	// scv = 3: H2.
	d, err = FitPhaseType(0.02, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.(*HyperExp); !ok {
		t.Errorf("scv=3 gave %T", d)
	}
}

func TestFitPhaseTypeValidation(t *testing.T) {
	for _, c := range []struct{ mean, scv float64 }{
		{0, 1}, {-1, 1}, {1, 0}, {1, -2},
		{math.NaN(), 1}, {1, math.NaN()}, {math.Inf(1), 1},
	} {
		if _, err := FitPhaseType(c.mean, c.scv); err == nil {
			t.Errorf("mean=%v scv=%v should fail", c.mean, c.scv)
		}
	}
}

// TestFitPhaseTypeMomentsProperty: mean always exact, scv exact across the
// whole range.
func TestFitPhaseTypeMomentsProperty(t *testing.T) {
	f := func(rawMean, rawSCV uint16) bool {
		mean := 0.001 + float64(rawMean%1000)/1000
		scv := 0.05 + float64(rawSCV%100)/10 // 0.05 .. 10.05
		d, err := FitPhaseType(mean, scv)
		if err != nil {
			return false
		}
		if math.Abs(d.Mean()-mean)/mean > 1e-9 {
			return false
		}
		gotSCV := SCV(d)
		if _, isErlang := d.(Erlang); isErlang {
			// Erlang matches 1/k, the nearest stage count.
			return gotSCV <= 1
		}
		return math.Abs(gotSCV-scv)/scv < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
