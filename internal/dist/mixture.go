package dist

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// ErrBadMixture reports invalid mixture construction arguments.
var ErrBadMixture = errors.New("dist: mixture needs matching components and nonnegative weights summing to > 0")

// Mixture is a finite probability mixture of component distributions. The
// paper's cache-aware per-operation latencies are exactly two-component
// mixtures: disk latency with probability m (the miss ratio) and δ(0) with
// probability 1-m.
type Mixture struct {
	components []Distribution
	weights    []float64 // normalized, same length as components
	cum        []float64 // cumulative weights for sampling
}

// NewMixture builds a mixture from components and (unnormalized) weights.
func NewMixture(components []Distribution, weights []float64) (*Mixture, error) {
	if len(components) == 0 || len(components) != len(weights) {
		return nil, ErrBadMixture
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return nil, ErrBadMixture
		}
		total += w
	}
	if total <= 0 {
		return nil, ErrBadMixture
	}
	m := &Mixture{
		components: append([]Distribution(nil), components...),
		weights:    make([]float64, len(weights)),
		cum:        make([]float64, len(weights)),
	}
	acc := 0.0
	for i, w := range weights {
		m.weights[i] = w / total
		acc += w / total
		m.cum[i] = acc
	}
	return m, nil
}

// HitOrMiss builds the paper's two-point operation latency: with probability
// miss the latency is drawn from disk, otherwise it is 0 (memory hit).
// index(t) = indexd(t)·m + δ(t)·(1-m) in the paper's notation.
func HitOrMiss(disk Distribution, miss float64) (*Mixture, error) {
	if miss < 0 || miss > 1 || math.IsNaN(miss) {
		return nil, fmt.Errorf("dist: miss ratio %v outside [0,1]: %w", miss, ErrBadMixture)
	}
	return NewMixture(
		[]Distribution{disk, Degenerate{Value: 0}},
		[]float64{miss, 1 - miss},
	)
}

// Components returns the component distributions (not a copy; treat as
// read-only).
func (m *Mixture) Components() []Distribution { return m.components }

// Weights returns the normalized weights (treat as read-only).
func (m *Mixture) Weights() []float64 { return m.weights }

// Mean implements Distribution.
func (m *Mixture) Mean() float64 {
	total := 0.0
	for i, c := range m.components {
		total += m.weights[i] * c.Mean()
	}
	return total
}

// Variance implements Distribution (law of total variance).
func (m *Mixture) Variance() float64 {
	mean := m.Mean()
	total := 0.0
	for i, c := range m.components {
		cm := c.Mean()
		total += m.weights[i] * (c.Variance() + (cm-mean)*(cm-mean))
	}
	return total
}

// CDF implements Distribution.
func (m *Mixture) CDF(x float64) float64 {
	total := 0.0
	for i, c := range m.components {
		total += m.weights[i] * c.CDF(x)
	}
	return total
}

// Quantile implements Distribution (numeric inversion).
func (m *Mixture) Quantile(p float64) float64 {
	switch {
	case p < 0 || p > 1 || math.IsNaN(p):
		return math.NaN()
	case p == 0:
		return 0
	case p == 1:
		return math.Inf(1)
	}
	return quantileByBisection(m.CDF, m.Mean(), StdDev(m), p)
}

// Sample implements Distribution.
func (m *Mixture) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	for i, c := range m.cum {
		if u <= c {
			return m.components[i].Sample(rng)
		}
	}
	return m.components[len(m.components)-1].Sample(rng)
}

// LST implements Distribution: the weighted sum of component LSTs.
func (m *Mixture) LST(s complex128) complex128 {
	var total complex128
	for i, c := range m.components {
		total += complex(m.weights[i], 0) * c.LST(s)
	}
	return total
}

// String implements Distribution.
func (m *Mixture) String() string {
	var b strings.Builder
	b.WriteString("Mixture(")
	for i, c := range m.components {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%.4g×%s", m.weights[i], c)
	}
	b.WriteString(")")
	return b.String()
}

var _ Distribution = (*Mixture)(nil)
