package dist

import (
	"fmt"
	"math"
)

// FitPhaseType returns a phase-type distribution matching the given mean
// and squared coefficient of variation, using the standard two-moment
// recipe from queueing practice:
//
//   - scv == 1 → Exponential
//   - scv  < 1 → Erlang with k = ceil(1/scv) stages, then a Gamma with the
//     exact scv when 1/scv is not an integer (the generalized Erlang)
//   - scv  > 1 → balanced two-branch hyperexponential (H2)
//
// The result always matches the mean exactly and the scv exactly (Gamma and
// H2 branches) or exactly when 1/scv is integral (Erlang branch).
func FitPhaseType(mean, scv float64) (Distribution, error) {
	switch {
	case mean <= 0 || math.IsNaN(mean) || math.IsInf(mean, 0):
		return nil, fmt.Errorf("%w: mean %v", ErrFit, mean)
	case scv <= 0 || math.IsNaN(scv) || math.IsInf(scv, 0):
		return nil, fmt.Errorf("%w: scv %v", ErrFit, scv)
	case math.Abs(scv-1) < 1e-12:
		return Exponential{Rate: 1 / mean}, nil
	case scv > 1:
		return NewHyperExpMeanSCV(mean, scv)
	}
	// scv < 1: Erlang if 1/scv is (nearly) integral, else Gamma.
	k := 1 / scv
	if rounded := math.Round(k); math.Abs(k-rounded) < 1e-9 {
		return Erlang{K: int(rounded), Rate: rounded / mean}, nil
	}
	return NewGammaMeanSCV(mean, scv), nil
}
