package dist

import (
	"fmt"
	"math/rand"
)

// Scaled is the distribution of c·X for a base distribution of X and scale
// factor c > 0. The model uses it to rescale calibrated disk service-time
// distributions to the online-measured mean while preserving shape
// (Section IV-B of the paper: the proportion of per-operation service times
// is assumed stable while the overall disk service time fluctuates).
type Scaled struct {
	Base  Distribution
	Scale float64
}

// ScaleToMean rescales d so that its mean becomes mean. A Gamma base is
// rescaled exactly in its own parameterization (rate division) to keep LST
// evaluation cheap; other distributions are wrapped.
func ScaleToMean(d Distribution, mean float64) Distribution {
	m := d.Mean()
	if m <= 0 || mean <= 0 {
		return d
	}
	return ScaleBy(d, mean/m)
}

// ScaleBy returns the distribution of factor·X.
func ScaleBy(d Distribution, factor float64) Distribution {
	if factor == 1 {
		return d
	}
	switch t := d.(type) {
	case Gamma:
		return Gamma{Shape: t.Shape, Rate: t.Rate / factor}
	case Exponential:
		return Exponential{Rate: t.Rate / factor}
	case Degenerate:
		return Degenerate{Value: t.Value * factor}
	case Scaled:
		return Scaled{Base: t.Base, Scale: t.Scale * factor}
	}
	return Scaled{Base: d, Scale: factor}
}

// Mean implements Distribution.
func (s Scaled) Mean() float64 { return s.Scale * s.Base.Mean() }

// Variance implements Distribution.
func (s Scaled) Variance() float64 { return s.Scale * s.Scale * s.Base.Variance() }

// CDF implements Distribution.
func (s Scaled) CDF(x float64) float64 { return s.Base.CDF(x / s.Scale) }

// Quantile implements Distribution.
func (s Scaled) Quantile(p float64) float64 { return s.Scale * s.Base.Quantile(p) }

// Sample implements Distribution.
func (s Scaled) Sample(rng *rand.Rand) float64 { return s.Scale * s.Base.Sample(rng) }

// LST implements Distribution: E[e^{-s·cX}] = LST_X(c·s).
func (s Scaled) LST(z complex128) complex128 {
	return s.Base.LST(z * complex(s.Scale, 0))
}

// String implements Distribution.
func (s Scaled) String() string {
	return fmt.Sprintf("Scaled(%g × %s)", s.Scale, s.Base)
}

var _ Distribution = Scaled{}
