package dist

import (
	"errors"
	"math"
	"sort"

	"cosmodel/internal/numeric"
)

// ErrFit reports that a fitting routine was given unusable data.
var ErrFit = errors.New("dist: cannot fit distribution to the given samples")

// FitDegenerate fits a point mass (the sample mean).
func FitDegenerate(samples []float64) (Degenerate, error) {
	if len(samples) == 0 {
		return Degenerate{}, ErrFit
	}
	m, _ := meanVar(samples)
	return Degenerate{Value: m}, nil
}

// FitExponential fits an exponential by maximum likelihood (rate = 1/mean).
func FitExponential(samples []float64) (Exponential, error) {
	if len(samples) == 0 {
		return Exponential{}, ErrFit
	}
	m, _ := meanVar(samples)
	if m <= 0 {
		return Exponential{}, ErrFit
	}
	return Exponential{Rate: 1 / m}, nil
}

// FitNormal fits a normal by maximum likelihood.
func FitNormal(samples []float64) (Normal, error) {
	if len(samples) < 2 {
		return Normal{}, ErrFit
	}
	m, v := meanVar(samples)
	if v <= 0 {
		return Normal{}, ErrFit
	}
	return Normal{Mu: m, Sigma: math.Sqrt(v)}, nil
}

// FitGamma fits a Gamma distribution by maximum likelihood: a method-of-
// moments start refined by Newton iterations on the MLE equation
// ln(k) - ψ(k) = ln(mean) - mean(log x). This is the calibration step behind
// the paper's Fig. 5.
func FitGamma(samples []float64) (Gamma, error) {
	if len(samples) < 2 {
		return Gamma{}, ErrFit
	}
	m, v := meanVar(samples)
	if m <= 0 || v <= 0 {
		return Gamma{}, ErrFit
	}
	var logSum float64
	n := 0
	for _, x := range samples {
		if x <= 0 {
			continue // Gamma support is positive; skip zeros from cache hits
		}
		logSum += math.Log(x)
		n++
	}
	if n < 2 {
		return Gamma{}, ErrFit
	}
	s := math.Log(m) - logSum/float64(n)
	k := m * m / v // method-of-moments start
	if s > 0 {
		// Standard closed-form start for the MLE equation.
		k = (3 - s + math.Sqrt((s-3)*(s-3)+24*s)) / (12 * s)
	}
	if k <= 0 || math.IsNaN(k) || math.IsInf(k, 0) {
		k = 1
	}
	for i := 0; i < 50; i++ {
		f := math.Log(k) - numeric.Digamma(k) - s
		df := 1/k - numeric.Trigamma(k)
		next := k - f/df
		if next <= 0 || math.IsNaN(next) {
			break
		}
		if math.Abs(next-k) < 1e-12*k {
			k = next
			break
		}
		k = next
	}
	return Gamma{Shape: k, Rate: k / m}, nil
}

// FitLognormal fits a lognormal by maximum likelihood on log-samples.
func FitLognormal(samples []float64) (Lognormal, error) {
	logs := make([]float64, 0, len(samples))
	for _, x := range samples {
		if x > 0 {
			logs = append(logs, math.Log(x))
		}
	}
	if len(logs) < 2 {
		return Lognormal{}, ErrFit
	}
	m, v := meanVar(logs)
	if v <= 0 {
		return Lognormal{}, ErrFit
	}
	return Lognormal{Mu: m, Sigma: math.Sqrt(v)}, nil
}

// KolmogorovSmirnov returns the K-S statistic sup_x |F_n(x) - F(x)| between
// the samples' empirical CDF and the candidate distribution.
func KolmogorovSmirnov(samples []float64, d Distribution) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	n := float64(len(s))
	maxDev := 0.0
	for i, x := range s {
		f := d.CDF(x)
		lo := float64(i) / n
		hi := float64(i+1) / n
		if dev := math.Abs(f - lo); dev > maxDev {
			maxDev = dev
		}
		if dev := math.Abs(f - hi); dev > maxDev {
			maxDev = dev
		}
	}
	return maxDev
}

// FitResult is one candidate from FitBest.
type FitResult struct {
	Name string
	Dist Distribution
	KS   float64
}

// FitBest fits the paper's four candidate families (Exponential, Degenerate,
// Normal, Gamma) and ranks them by K-S statistic, best first. Families that
// fail to fit are skipped.
func FitBest(samples []float64) ([]FitResult, error) {
	if len(samples) == 0 {
		return nil, ErrFit
	}
	var results []FitResult
	if d, err := FitExponential(samples); err == nil {
		results = append(results, FitResult{"exponential", d, KolmogorovSmirnov(samples, d)})
	}
	if d, err := FitDegenerate(samples); err == nil {
		results = append(results, FitResult{"degenerate", d, KolmogorovSmirnov(samples, d)})
	}
	if d, err := FitNormal(samples); err == nil {
		results = append(results, FitResult{"normal", d, KolmogorovSmirnov(samples, d)})
	}
	if d, err := FitGamma(samples); err == nil {
		results = append(results, FitResult{"gamma", d, KolmogorovSmirnov(samples, d)})
	}
	if len(results) == 0 {
		return nil, ErrFit
	}
	sort.Slice(results, func(i, j int) bool { return results[i].KS < results[j].KS })
	return results, nil
}

func meanVar(samples []float64) (mean, variance float64) {
	n := float64(len(samples))
	for _, v := range samples {
		mean += v
	}
	mean /= n
	for _, v := range samples {
		d := v - mean
		variance += d * d
	}
	variance /= n
	return mean, variance
}
