package dist

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"cosmodel/internal/numeric"
)

// ErrFit reports that a fitting routine was given unusable data.
var ErrFit = errors.New("dist: cannot fit distribution to the given samples")

// Typed refinements of ErrFit (errors.Is(err, ErrFit) holds for both): the
// streaming calibration path feeds fitters small, possibly constant windows
// and needs to distinguish "wait for more data" from "fall back to a point
// mass".
var (
	// ErrTooFewSamples reports that the sample is too small for the family.
	ErrTooFewSamples = fmt.Errorf("%w: too few samples", ErrFit)
	// ErrZeroVariance reports a (numerically) constant sample: families
	// with a scale parameter have no maximum-likelihood fit.
	ErrZeroVariance = fmt.Errorf("%w: sample variance is zero", ErrFit)
	// ErrBadSamples reports NaN/Inf/nonpositive contamination that makes
	// the sample unusable for the requested family.
	ErrBadSamples = fmt.Errorf("%w: samples contain NaN, Inf or nonpositive values", ErrFit)
)

// FitDegenerate fits a point mass (the sample mean).
func FitDegenerate(samples []float64) (Degenerate, error) {
	if len(samples) == 0 {
		return Degenerate{}, ErrTooFewSamples
	}
	m, _ := meanVar(samples)
	if math.IsNaN(m) || math.IsInf(m, 0) {
		return Degenerate{}, ErrBadSamples
	}
	return Degenerate{Value: m}, nil
}

// FitExponential fits an exponential by maximum likelihood (rate = 1/mean).
func FitExponential(samples []float64) (Exponential, error) {
	if len(samples) == 0 {
		return Exponential{}, ErrTooFewSamples
	}
	m, _ := meanVar(samples)
	if math.IsNaN(m) || math.IsInf(m, 0) {
		return Exponential{}, ErrBadSamples
	}
	if m <= 0 {
		return Exponential{}, ErrBadSamples
	}
	return Exponential{Rate: 1 / m}, nil
}

// FitNormal fits a normal by maximum likelihood.
func FitNormal(samples []float64) (Normal, error) {
	if len(samples) < 2 {
		return Normal{}, ErrTooFewSamples
	}
	m, v := meanVar(samples)
	if math.IsNaN(m) || math.IsInf(m, 0) || math.IsNaN(v) || math.IsInf(v, 0) {
		return Normal{}, ErrBadSamples
	}
	if v <= 0 {
		return Normal{}, ErrZeroVariance
	}
	return Normal{Mu: m, Sigma: math.Sqrt(v)}, nil
}

// FitGamma fits a Gamma distribution by maximum likelihood: a method-of-
// moments start refined by Newton iterations on the MLE equation
// ln(k) - ψ(k) = ln(mean) - mean(log x). This is the calibration step behind
// the paper's Fig. 5.
func FitGamma(samples []float64) (Gamma, error) {
	if len(samples) < 2 {
		return Gamma{}, ErrTooFewSamples
	}
	m, v := meanVar(samples)
	if math.IsNaN(m) || math.IsInf(m, 0) || math.IsNaN(v) || math.IsInf(v, 0) {
		return Gamma{}, ErrBadSamples
	}
	if m <= 0 {
		return Gamma{}, ErrBadSamples
	}
	if v <= 0 {
		return Gamma{}, ErrZeroVariance
	}
	var logSum float64
	n := 0
	for _, x := range samples {
		if x <= 0 {
			continue // Gamma support is positive; skip zeros from cache hits
		}
		logSum += math.Log(x)
		n++
	}
	if n < 2 {
		return Gamma{}, ErrTooFewSamples
	}
	s := math.Log(m) - logSum/float64(n)
	k := m * m / v // method-of-moments start
	if s > 0 {
		// Standard closed-form start for the MLE equation.
		k = (3 - s + math.Sqrt((s-3)*(s-3)+24*s)) / (12 * s)
	}
	if k <= 0 || math.IsNaN(k) || math.IsInf(k, 0) {
		k = 1
	}
	for i := 0; i < 50; i++ {
		f := math.Log(k) - numeric.Digamma(k) - s
		df := 1/k - numeric.Trigamma(k)
		next := k - f/df
		if next <= 0 || math.IsNaN(next) {
			break
		}
		if math.Abs(next-k) < 1e-12*k {
			k = next
			break
		}
		k = next
	}
	g := Gamma{Shape: k, Rate: k / m}
	// A near-constant sample can push the MLE iteration to astronomically
	// large shapes whose LST evaluation over- or underflows; cap well inside
	// the safe range (SCV 1e-8 is indistinguishable from a point mass).
	const maxShape = 1e8
	if g.Shape > maxShape {
		return Gamma{}, ErrZeroVariance
	}
	if !isFinitePositive(g.Shape) || !isFinitePositive(g.Rate) {
		return Gamma{}, fmt.Errorf("%w: fitted parameters not finite (shape=%v rate=%v)", ErrFit, g.Shape, g.Rate)
	}
	return g, nil
}

// FitGammaOrDegenerate is FitGamma with the fallback the streaming
// calibrators need: a sample the Gamma family cannot represent — constant
// (zero variance) or a single positive observation — degrades to a point
// mass at the sample mean instead of an error, so a tiny or quiet window
// still yields a servable distribution. Errors are only returned for samples
// that carry no usable information at all (empty, nonpositive, NaN/Inf).
func FitGammaOrDegenerate(samples []float64) (Distribution, error) {
	g, err := FitGamma(samples)
	if err == nil {
		return g, nil
	}
	if !errors.Is(err, ErrZeroVariance) && !errors.Is(err, ErrTooFewSamples) {
		return nil, err
	}
	m, n := 0.0, 0
	for _, x := range samples {
		if x > 0 && !math.IsInf(x, 0) && !math.IsNaN(x) {
			m += x
			n++
		}
	}
	if n == 0 {
		return nil, ErrBadSamples
	}
	return Degenerate{Value: m / float64(n)}, nil
}

func isFinitePositive(x float64) bool {
	return x > 0 && !math.IsInf(x, 0) && !math.IsNaN(x)
}

// FitLognormal fits a lognormal by maximum likelihood on log-samples.
func FitLognormal(samples []float64) (Lognormal, error) {
	logs := make([]float64, 0, len(samples))
	for _, x := range samples {
		if x > 0 {
			logs = append(logs, math.Log(x))
		}
	}
	if len(logs) < 2 {
		return Lognormal{}, ErrTooFewSamples
	}
	m, v := meanVar(logs)
	if math.IsNaN(m) || math.IsInf(m, 0) || math.IsNaN(v) || math.IsInf(v, 0) {
		return Lognormal{}, ErrBadSamples
	}
	if v <= 0 {
		return Lognormal{}, ErrZeroVariance
	}
	return Lognormal{Mu: m, Sigma: math.Sqrt(v)}, nil
}

// KolmogorovSmirnov returns the K-S statistic sup_x |F_n(x) - F(x)| between
// the samples' empirical CDF and the candidate distribution.
func KolmogorovSmirnov(samples []float64, d Distribution) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	n := float64(len(s))
	maxDev := 0.0
	for i, x := range s {
		f := d.CDF(x)
		lo := float64(i) / n
		hi := float64(i+1) / n
		if dev := math.Abs(f - lo); dev > maxDev {
			maxDev = dev
		}
		if dev := math.Abs(f - hi); dev > maxDev {
			maxDev = dev
		}
	}
	return maxDev
}

// FitResult is one candidate from FitBest.
type FitResult struct {
	Name string
	Dist Distribution
	KS   float64
}

// FitBest fits the paper's four candidate families (Exponential, Degenerate,
// Normal, Gamma) and ranks them by K-S statistic, best first. Families that
// fail to fit are skipped.
func FitBest(samples []float64) ([]FitResult, error) {
	if len(samples) == 0 {
		return nil, ErrFit
	}
	var results []FitResult
	if d, err := FitExponential(samples); err == nil {
		results = append(results, FitResult{"exponential", d, KolmogorovSmirnov(samples, d)})
	}
	if d, err := FitDegenerate(samples); err == nil {
		results = append(results, FitResult{"degenerate", d, KolmogorovSmirnov(samples, d)})
	}
	if d, err := FitNormal(samples); err == nil {
		results = append(results, FitResult{"normal", d, KolmogorovSmirnov(samples, d)})
	}
	if d, err := FitGamma(samples); err == nil {
		results = append(results, FitResult{"gamma", d, KolmogorovSmirnov(samples, d)})
	}
	if len(results) == 0 {
		return nil, ErrFit
	}
	sort.Slice(results, func(i, j int) bool { return results[i].KS < results[j].KS })
	return results, nil
}

func meanVar(samples []float64) (mean, variance float64) {
	n := float64(len(samples))
	for _, v := range samples {
		mean += v
	}
	mean /= n
	for _, v := range samples {
		d := v - mean
		variance += d * d
	}
	variance /= n
	return mean, variance
}
