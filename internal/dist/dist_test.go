package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cosmodel/internal/numeric"
)

// allTestDists returns a representative set of nonnegative distributions.
func allTestDists() []Distribution {
	mix, _ := HitOrMiss(Gamma{Shape: 2, Rate: 100}, 0.3)
	return []Distribution{
		Degenerate{Value: 0.004},
		Exponential{Rate: 120},
		Gamma{Shape: 2.2, Rate: 180},
		Lognormal{Mu: -5, Sigma: 0.6},
		Uniform{Lo: 0.001, Hi: 0.02},
		Weibull{K: 1.5, Lambda: 0.01},
		mix,
		Scaled{Base: Gamma{Shape: 3, Rate: 300}, Scale: 2},
	}
}

func TestMomentsAgainstSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 200000
	for _, d := range allTestDists() {
		var sum, sum2 float64
		for i := 0; i < n; i++ {
			v := d.Sample(rng)
			sum += v
			sum2 += v * v
		}
		mean := sum / n
		variance := sum2/n - mean*mean
		if rel := math.Abs(mean-d.Mean()) / (d.Mean() + 1e-12); rel > 0.02 {
			t.Errorf("%s: sample mean %v vs %v", d, mean, d.Mean())
		}
		if d.Variance() > 0 {
			if rel := math.Abs(variance-d.Variance()) / d.Variance(); rel > 0.06 {
				t.Errorf("%s: sample var %v vs %v", d, variance, d.Variance())
			}
		}
	}
}

func TestCDFProperties(t *testing.T) {
	for _, d := range allTestDists() {
		hi := d.Mean() + 10*StdDev(d) + 0.1
		prev := -1.0
		for x := 0.0; x <= hi; x += hi / 200 {
			c := d.CDF(x)
			if c < -1e-12 || c > 1+1e-12 {
				t.Fatalf("%s: CDF(%v) = %v outside [0,1]", d, x, c)
			}
			if c < prev-1e-12 {
				t.Fatalf("%s: CDF not monotone at %v", d, x)
			}
			prev = c
		}
		if c := d.CDF(hi * 50); c < 0.999 {
			t.Errorf("%s: CDF(%v) = %v, want ~1", d, hi*50, c)
		}
	}
}

func TestQuantileCDFConsistency(t *testing.T) {
	for _, d := range allTestDists() {
		for _, p := range []float64{0.05, 0.25, 0.5, 0.75, 0.95, 0.99} {
			q := d.Quantile(p)
			c := d.CDF(q)
			// CDF(Quantile(p)) >= p, with equality for continuous dists.
			if c < p-1e-6 {
				t.Errorf("%s: CDF(Quantile(%v)) = %v < p", d, p, c)
			}
		}
	}
}

func TestLSTAtZeroIsOne(t *testing.T) {
	for _, d := range allTestDists() {
		if got := d.LST(0); math.Abs(real(got)-1) > 1e-6 || math.Abs(imag(got)) > 1e-6 {
			t.Errorf("%s: LST(0) = %v, want 1", d, got)
		}
	}
}

func TestLSTMatchesMean(t *testing.T) {
	for _, d := range allTestDists() {
		if _, ok := d.(Lognormal); ok {
			continue // numeric LST derivative too noisy for the tolerance
		}
		if _, ok := d.(Weibull); ok {
			continue
		}
		got := numeric.MeanFromLST(d.LST, 1/math.Max(d.Mean(), 1e-9))
		if math.Abs(got-d.Mean()) > 1e-4*(d.Mean()+1e-12) {
			t.Errorf("%s: mean from LST %v, want %v", d, got, d.Mean())
		}
	}
}

func TestLSTInversionMatchesCDF(t *testing.T) {
	inv := numeric.NewEuler()
	for _, d := range allTestDists() {
		switch d.(type) {
		case Degenerate, Lognormal, Weibull:
			continue // step discontinuity / slow numeric LST
		}
		for _, p := range []float64{0.2, 0.5, 0.8} {
			x := d.Quantile(p)
			if x <= 0 {
				continue
			}
			got := numeric.InvertCDF(inv, d.LST, x)
			want := d.CDF(x)
			if math.Abs(got-want) > 5e-3 {
				t.Errorf("%s: inverted CDF(%v) = %v, want %v", d, x, got, want)
			}
		}
	}
}

func TestExponentialQuantileRoundTrip(t *testing.T) {
	e := Exponential{Rate: 7}
	f := func(raw float64) bool {
		p := math.Mod(math.Abs(raw), 1)
		q := e.Quantile(p)
		return math.Abs(e.CDF(q)-p) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGammaSpecialCases(t *testing.T) {
	// Gamma(1, λ) is Exponential(λ).
	g := Gamma{Shape: 1, Rate: 5}
	e := Exponential{Rate: 5}
	for _, x := range []float64{0.01, 0.1, 0.5, 1} {
		if math.Abs(g.CDF(x)-e.CDF(x)) > 1e-12 {
			t.Errorf("Gamma(1,5).CDF(%v) = %v, want %v", x, g.CDF(x), e.CDF(x))
		}
	}
}

func TestNewGammaMeanSCV(t *testing.T) {
	g := NewGammaMeanSCV(0.01, 0.5)
	if math.Abs(g.Mean()-0.01) > 1e-15 {
		t.Errorf("mean = %v", g.Mean())
	}
	if math.Abs(SCV(g)-0.5) > 1e-12 {
		t.Errorf("scv = %v", SCV(g))
	}
}

func TestNewLognormalMeanMedian(t *testing.T) {
	l := NewLognormalMeanMedian(32768, 12000)
	if math.Abs(l.Mean()-32768)/32768 > 1e-12 {
		t.Errorf("mean = %v", l.Mean())
	}
	if math.Abs(l.Quantile(0.5)-12000)/12000 > 1e-9 {
		t.Errorf("median = %v", l.Quantile(0.5))
	}
}

func TestScaleBy(t *testing.T) {
	g := Gamma{Shape: 2, Rate: 10}
	s := ScaleBy(g, 3)
	if sg, ok := s.(Gamma); !ok || math.Abs(sg.Mean()-0.6) > 1e-12 {
		t.Errorf("scaled gamma = %v", s)
	}
	d := ScaleBy(Degenerate{Value: 2}, 0.5)
	if d.Mean() != 1 {
		t.Errorf("scaled degenerate mean = %v", d.Mean())
	}
	if same := ScaleBy(g, 1); same != Distribution(g) {
		t.Error("ScaleBy(d, 1) should return d unchanged")
	}
	// Nested scaling collapses.
	w := ScaleBy(Weibull{K: 2, Lambda: 1}, 2)
	ww := ScaleBy(w, 3)
	if sc, ok := ww.(Scaled); !ok || sc.Scale != 6 {
		t.Errorf("nested scale = %v", ww)
	}
}

func TestScaleToMean(t *testing.T) {
	g := Gamma{Shape: 2, Rate: 10} // mean 0.2
	s := ScaleToMean(g, 0.05)
	if math.Abs(s.Mean()-0.05) > 1e-12 {
		t.Errorf("mean = %v", s.Mean())
	}
	// Shape preserved.
	if math.Abs(SCV(s)-SCV(g)) > 1e-12 {
		t.Errorf("scv changed: %v vs %v", SCV(s), SCV(g))
	}
}

func TestSecondMomentAndSCV(t *testing.T) {
	e := Exponential{Rate: 2} // mean .5, var .25, E[X²] = .5
	if got := SecondMoment(e); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("second moment = %v", got)
	}
	if got := SCV(e); math.Abs(got-1) > 1e-12 {
		t.Errorf("scv = %v", got)
	}
	if got := SCV(Degenerate{Value: 0}); !math.IsInf(got, 1) {
		t.Errorf("SCV of zero-mass = %v, want +Inf", got)
	}
}

func TestSampleN(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := SampleN(Exponential{Rate: 1}, rng, 100)
	if len(s) != 100 {
		t.Fatalf("len = %d", len(s))
	}
}
