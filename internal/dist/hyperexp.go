package dist

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// ErrBadHyperExp reports invalid hyperexponential parameters.
var ErrBadHyperExp = errors.New("dist: hyperexponential needs matching positive rates and weights")

// HyperExp is a hyperexponential (mixture-of-exponentials) distribution:
// with probability Weights[i] the value is Exponential(Rates[i]). Its SCV is
// always >= 1, which makes it the standard two-moment match for
// high-variability service times in queueing models.
type HyperExp struct {
	rates   []float64
	weights []float64 // normalized
	cum     []float64
}

// NewHyperExp builds a hyperexponential from branch rates and weights.
func NewHyperExp(rates, weights []float64) (*HyperExp, error) {
	if len(rates) == 0 || len(rates) != len(weights) {
		return nil, ErrBadHyperExp
	}
	total := 0.0
	for i := range rates {
		if rates[i] <= 0 || weights[i] < 0 || math.IsNaN(rates[i]) || math.IsNaN(weights[i]) {
			return nil, ErrBadHyperExp
		}
		total += weights[i]
	}
	if total <= 0 {
		return nil, ErrBadHyperExp
	}
	h := &HyperExp{
		rates:   append([]float64(nil), rates...),
		weights: make([]float64, len(weights)),
		cum:     make([]float64, len(weights)),
	}
	acc := 0.0
	for i, w := range weights {
		h.weights[i] = w / total
		acc += w / total
		h.cum[i] = acc
	}
	return h, nil
}

// NewHyperExpMeanSCV builds a balanced two-branch H2 distribution matching
// the given mean and squared coefficient of variation (scv >= 1). It uses
// the standard balanced-means parameterization:
//
//	p1 = (1 + sqrt((scv-1)/(scv+1)))/2,  p2 = 1-p1
//	r1 = 2·p1/mean,                      r2 = 2·p2/mean
func NewHyperExpMeanSCV(mean, scv float64) (*HyperExp, error) {
	if mean <= 0 || scv < 1 {
		return nil, fmt.Errorf("%w: mean=%v scv=%v (need scv >= 1)", ErrBadHyperExp, mean, scv)
	}
	p1 := (1 + math.Sqrt((scv-1)/(scv+1))) / 2
	p2 := 1 - p1
	return NewHyperExp(
		[]float64{2 * p1 / mean, 2 * p2 / mean},
		[]float64{p1, p2},
	)
}

// Branches returns the number of exponential branches.
func (h *HyperExp) Branches() int { return len(h.rates) }

// Mean implements Distribution.
func (h *HyperExp) Mean() float64 {
	total := 0.0
	for i := range h.rates {
		total += h.weights[i] / h.rates[i]
	}
	return total
}

// Variance implements Distribution.
func (h *HyperExp) Variance() float64 {
	m := h.Mean()
	m2 := 0.0
	for i := range h.rates {
		m2 += h.weights[i] * 2 / (h.rates[i] * h.rates[i])
	}
	return m2 - m*m
}

// CDF implements Distribution.
func (h *HyperExp) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	total := 0.0
	for i := range h.rates {
		total += h.weights[i] * -math.Expm1(-h.rates[i]*x)
	}
	return total
}

// Quantile implements Distribution (numeric inversion).
func (h *HyperExp) Quantile(p float64) float64 {
	switch {
	case p < 0 || p > 1 || math.IsNaN(p):
		return math.NaN()
	case p == 0:
		return 0
	case p == 1:
		return math.Inf(1)
	}
	return quantileByBisection(h.CDF, h.Mean(), StdDev(h), p)
}

// Sample implements Distribution.
func (h *HyperExp) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	for i, c := range h.cum {
		if u <= c {
			return rng.ExpFloat64() / h.rates[i]
		}
	}
	return rng.ExpFloat64() / h.rates[len(h.rates)-1]
}

// LST implements Distribution: Σ wᵢ·rᵢ/(s+rᵢ).
func (h *HyperExp) LST(s complex128) complex128 {
	var total complex128
	for i := range h.rates {
		r := complex(h.rates[i], 0)
		total += complex(h.weights[i], 0) * r / (s + r)
	}
	return total
}

// String implements Distribution.
func (h *HyperExp) String() string {
	var b strings.Builder
	b.WriteString("HyperExp(")
	for i := range h.rates {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%.4g@%.4g", h.weights[i], h.rates[i])
	}
	b.WriteString(")")
	return b.String()
}

var _ Distribution = (*HyperExp)(nil)
