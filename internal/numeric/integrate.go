package numeric

import "math"

// IntegrateAdaptive computes ∫_a^b f(x) dx with adaptive Simpson quadrature
// to the requested absolute tolerance. It is intended for smooth integrands;
// integrable endpoint singularities should be transformed away by the caller.
func IntegrateAdaptive(f func(float64) float64, a, b, tol float64) float64 {
	if a == b {
		return 0
	}
	if tol <= 0 {
		tol = 1e-10
	}
	fa, fm, fb := f(a), f((a+b)/2), f(b)
	whole := simpson(a, b, fa, fm, fb)
	return adaptiveSimpson(f, a, b, fa, fm, fb, whole, tol, 50)
}

func simpson(a, b, fa, fm, fb float64) float64 {
	return (b - a) / 6 * (fa + 4*fm + fb)
}

func adaptiveSimpson(f func(float64) float64, a, b, fa, fm, fb, whole, tol float64, depth int) float64 {
	m := (a + b) / 2
	lm := (a + m) / 2
	rm := (m + b) / 2
	flm, frm := f(lm), f(rm)
	left := simpson(a, m, fa, flm, fm)
	right := simpson(m, b, fm, frm, fb)
	delta := left + right - whole
	if depth <= 0 || math.Abs(delta) <= 15*tol {
		return left + right + delta/15
	}
	return adaptiveSimpson(f, a, m, fa, flm, fm, left, tol/2, depth-1) +
		adaptiveSimpson(f, m, b, fm, frm, fb, right, tol/2, depth-1)
}

// IntegrateToInfinity computes ∫_a^∞ f(x) dx for an integrand that decays to
// zero, by integrating successive octaves until the contribution of an octave
// falls below tol.
func IntegrateToInfinity(f func(float64) float64, a, tol float64) float64 {
	if tol <= 0 {
		tol = 1e-10
	}
	lo := a
	width := 1.0
	if a > 0 {
		width = a
	}
	total := 0.0
	for i := 0; i < 80; i++ {
		hi := lo + width
		part := IntegrateAdaptive(f, lo, hi, tol/8)
		total += part
		if math.Abs(part) < tol && i > 2 {
			break
		}
		lo = hi
		width *= 2
	}
	return total
}

// Trapezoid integrates pre-tabulated samples ys at abscissae xs.
// The slices must have equal length >= 2 and xs must be increasing.
func Trapezoid(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	total := 0.0
	for i := 1; i < len(xs); i++ {
		total += (xs[i] - xs[i-1]) * (ys[i] + ys[i-1]) / 2
	}
	return total
}
