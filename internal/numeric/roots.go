package numeric

import (
	"errors"
	"math"
)

// ErrNoBracket is returned when a root finder is given an interval whose
// endpoints do not bracket a sign change.
var ErrNoBracket = errors.New("numeric: endpoints do not bracket a root")

// ErrNoConverge is returned when an iterative method exhausts its iteration
// budget without meeting the tolerance.
var ErrNoConverge = errors.New("numeric: iteration did not converge")

// Bisect finds a root of f in [a, b] by bisection. f(a) and f(b) must have
// opposite signs. The result is accurate to tol in x.
func Bisect(f func(float64) float64, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if (fa > 0) == (fb > 0) {
		return math.NaN(), ErrNoBracket
	}
	if tol <= 0 {
		tol = 1e-12
	}
	for i := 0; i < 200; i++ {
		m := (a + b) / 2
		fm := f(m)
		if fm == 0 || (b-a)/2 < tol {
			return m, nil
		}
		if (fm > 0) == (fa > 0) {
			a, fa = m, fm
		} else {
			b = m
		}
	}
	return (a + b) / 2, nil
}

// Brent finds a root of f in [a, b] using Brent's method (inverse quadratic
// interpolation with bisection fallback). f(a) and f(b) must bracket a root.
func Brent(f func(float64) float64, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if (fa > 0) == (fb > 0) {
		return math.NaN(), ErrNoBracket
	}
	if tol <= 0 {
		tol = 1e-12
	}
	c, fc := a, fa
	d, e := b-a, b-a
	for i := 0; i < 200; i++ {
		if math.Abs(fc) < math.Abs(fb) {
			a, b, c = b, c, b
			fa, fb, fc = fb, fc, fb
		}
		tol1 := 2*math.SmallestNonzeroFloat64*math.Abs(b) + tol/2
		xm := (c - b) / 2
		if math.Abs(xm) <= tol1 || fb == 0 {
			return b, nil
		}
		if math.Abs(e) >= tol1 && math.Abs(fa) > math.Abs(fb) {
			s := fb / fa
			var p, q float64
			if a == c {
				p = 2 * xm * s
				q = 1 - s
			} else {
				q = fa / fc
				r := fb / fc
				p = s * (2*xm*q*(q-r) - (b-a)*(r-1))
				q = (q - 1) * (r - 1) * (s - 1)
			}
			if p > 0 {
				q = -q
			}
			p = math.Abs(p)
			if 2*p < math.Min(3*xm*q-math.Abs(tol1*q), math.Abs(e*q)) {
				e, d = d, p/q
			} else {
				d, e = xm, xm
			}
		} else {
			d, e = xm, xm
		}
		a, fa = b, fb
		if math.Abs(d) > tol1 {
			b += d
		} else if xm > 0 {
			b += tol1
		} else {
			b -= tol1
		}
		fb = f(b)
		if (fb > 0) == (fc > 0) {
			c, fc = a, fa
			d, e = b-a, b-a
		}
	}
	return b, ErrNoConverge
}

// NewtonWithFallback runs Newton iterations from x0 using derivative df,
// falling back to bisection on [lo, hi] if an iterate escapes the bracket or
// the derivative degenerates.
func NewtonWithFallback(f, df func(float64) float64, x0, lo, hi, tol float64) (float64, error) {
	if tol <= 0 {
		tol = 1e-12
	}
	x := x0
	for i := 0; i < 100; i++ {
		fx := f(x)
		if math.Abs(fx) == 0 {
			return x, nil
		}
		d := df(x)
		if d == 0 || math.IsNaN(d) {
			break
		}
		next := x - fx/d
		if math.IsNaN(next) || next <= lo || next >= hi {
			break
		}
		if math.Abs(next-x) < tol*(1+math.Abs(x)) {
			return next, nil
		}
		x = next
	}
	return Bisect(f, lo, hi, tol)
}
