package numeric

import (
	"fmt"
	"math"
)

// NonMonotoneError reports that a probe during guarded bracketed root
// finding escaped the envelope of the current bracket values by more than
// the caller's slack. For a monotone function every interior probe lies
// between the bracket endpoint values (up to bounded numerical noise), so
// an excursion means the function being inverted — typically a numerically
// inverted CDF — is itself broken, and any root extracted from it would be
// garbage.
type NonMonotoneError struct {
	// X is the probe location and F the offending function value.
	X, F float64
}

func (e *NonMonotoneError) Error() string {
	return fmt.Sprintf("numeric: non-monotone function in bracketed root finding: f(%g) = %g escapes the bracket envelope", e.X, e.F)
}

// Unwrap ties the guard into the package's numerical-failure taxonomy:
// errors.Is(err, ErrNumerical) holds for non-monotone aborts.
func (e *NonMonotoneError) Unwrap() error { return ErrNumerical }

// BrentGuarded finds a root of a nominally non-decreasing f on [lo, hi],
// given the endpoint values flo = f(lo) <= 0 <= fhi = f(hi) (passed in so
// bracket-growth probes are not re-evaluated). It replaces plain bisection
// on the quantile and admission search paths: probes interpolate through
// the bracket endpoints (false position with the Illinois modification —
// after two consecutive updates of the same endpoint the stagnant side's
// interpolation weight is halved, so the secant is forced across the root
// and both endpoints converge), resolving a smooth CDF in a handful of
// probes instead of a fixed bisection budget, while a bisection safeguard
// bounds the worst case.
//
// Guards, preserved from the bisections this replaces:
//
//   - f returning an error aborts immediately with that error — the closure
//     carries the caller's cancellation checkpoints, so ctx and EvalTimeout
//     are observed at every probe exactly as before;
//   - a probe value below flo-slack or above fhi+slack (the envelope of the
//     current bracket, which tightens as the bracket shrinks) aborts with a
//     *NonMonotoneError; NaN probes fail the envelope check by comparison
//     semantics and are rejected the same way.
//
// Stall detection: when an interpolated step leaves more than 75% of the
// bracket standing — the signature of a flat plateau, e.g. a clamped or
// saturated CDF, where secant iterates collapse onto one endpoint — the
// next step bisects instead of looping interpolation to the iteration cap.
// Convergence is therefore never slower than half bisection speed.
//
// xtol is the bracket width at which the search stops; xtol <= 0 iterates
// until the bracket collapses to adjacent floating-point values (or the
// 200-iteration cap). The returned root is the final bracket midpoint.
func BrentGuarded(f func(float64) (float64, error), lo, flo, hi, fhi, xtol, slack float64) (float64, error) {
	if !(flo <= 0) || !(fhi >= 0) || !(lo <= hi) {
		return math.NaN(), ErrNoBracket
	}
	if flo == 0 {
		return lo, nil
	}
	if fhi == 0 {
		return hi, nil
	}
	// flo/fhi stay the true probed endpoint values (they define the
	// monotonicity envelope); wlo/whi are the interpolation weights, which
	// the Illinois step may scale down without touching the envelope.
	bisect := false
	side := 0 // -1: last probe moved lo, +1: moved hi
	wlo, whi := flo, fhi
	for iter := 0; iter < 200 && hi-lo > xtol; iter++ {
		var x float64
		if d := whi - wlo; !bisect && d > 0 && !math.IsInf(d, 0) {
			x = lo + (hi-lo)*(-wlo/d)
			// Clamp interpolated probes strictly interior: a probe glued
			// to an endpoint cannot shrink the bracket, while a clamped
			// probe still cuts at least the pad off one side.
			pad := 0.01 * (hi - lo)
			if x < lo+pad {
				x = lo + pad
			} else if x > hi-pad {
				x = hi - pad
			}
		} else {
			x = lo + (hi-lo)/2
		}
		if x <= lo || x >= hi {
			break // bracket collapsed to adjacent floats
		}
		v, err := f(x)
		if err != nil {
			return 0, err
		}
		if !(v >= flo-slack) || !(v <= fhi+slack) {
			return 0, &NonMonotoneError{X: x, F: v}
		}
		width := hi - lo
		if v < 0 {
			lo, flo, wlo = x, v, v
			if side == -1 {
				whi *= 0.5
			}
			side = -1
		} else {
			hi, fhi, whi = x, v, v
			if side == 1 {
				wlo *= 0.5
			}
			side = 1
		}
		bisect = hi-lo > 0.75*width
	}
	return lo + (hi-lo)/2, nil
}
