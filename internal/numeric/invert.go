// Package numeric provides the numerical substrate used by the analytic
// model: numerical inversion of Laplace transforms, special functions
// (regularized incomplete gamma, digamma), adaptive quadrature, and root
// finding. Everything is implemented with the standard library only.
package numeric

import (
	"math"
	"math/cmplx"
)

// TransformFunc is a Laplace transform evaluated at a complex frequency s.
// For the model it is either the transform of a probability density
// (a Laplace–Stieltjes transform, LST) or of a CDF (LST divided by s).
type TransformFunc func(s complex128) complex128

// Inverter numerically inverts a Laplace transform, recovering the original
// time-domain function at a given point t > 0.
type Inverter interface {
	// Invert evaluates the inverse transform of f at time t. t must be
	// positive; behaviour for t <= 0 is implementation-defined (the
	// implementations in this package return 0).
	Invert(f TransformFunc, t float64) float64
	// Name identifies the algorithm, for reports and ablation tables.
	Name() string
}

// Euler implements the Abate–Whitt "EULER" algorithm: a Fourier-series
// expansion of the Bromwich integral accelerated with Euler summation.
// It is the workhorse inverter for this package: robust for probability
// CDFs, including those with atoms away from the evaluation point.
//
// The zero value is NOT ready for use; call NewEuler or set the fields.
type Euler struct {
	// A controls the discretization error bound (roughly e^-A). 18.4
	// targets ~1e-8 discretization error in double precision.
	A float64
	// Terms is the number of plain partial-sum terms before Euler
	// acceleration kicks in.
	Terms int
	// MTerms is the number of terms combined binomially by Euler
	// summation.
	MTerms int

	binom []float64 // C(MTerms, j) / 2^MTerms, len MTerms+1
}

// NewEuler returns an Euler inverter with the standard Abate–Whitt
// parameters (A=18.4, 15 plain terms, 11 Euler terms).
func NewEuler() *Euler {
	return NewEulerN(18.4, 15, 11)
}

// NewEulerN returns an Euler inverter with explicit parameters.
func NewEulerN(a float64, terms, mTerms int) *Euler {
	e := &Euler{A: a, Terms: terms, MTerms: mTerms}
	e.initBinom()
	return e
}

func (e *Euler) initBinom() {
	m := e.MTerms
	e.binom = make([]float64, m+1)
	c := math.Exp2(-float64(m)) // C(m,0)/2^m
	for j := 0; j <= m; j++ {
		e.binom[j] = c
		c = c * float64(m-j) / float64(j+1)
	}
}

// Name implements Inverter.
func (e *Euler) Name() string { return "euler" }

// Invert implements Inverter.
func (e *Euler) Invert(f TransformFunc, t float64) float64 {
	if t <= 0 {
		return 0
	}
	if e.binom == nil {
		e.initBinom()
	}
	x := e.A / (2 * t)
	h := math.Pi / t
	u := math.Exp(e.A/2) / t

	sum := real(f(complex(x, 0))) / 2
	sign := -1.0
	for k := 1; k <= e.Terms; k++ {
		sum += sign * real(f(complex(x, float64(k)*h)))
		sign = -sign
	}
	// Euler acceleration over the next MTerms partial sums.
	acc := 0.0
	partial := sum
	for j := 0; j <= e.MTerms; j++ {
		if j > 0 {
			k := e.Terms + j
			s := 1.0
			if k%2 == 1 {
				s = -1.0
			}
			partial += s * real(f(complex(x, float64(k)*h)))
		}
		acc += e.binom[j] * partial
	}
	return u * acc
}

// Talbot implements the fixed-Talbot method (Abate–Valkó). It deforms the
// Bromwich contour into a cotangent spiral; excellent for smooth functions,
// less robust than Euler near discontinuities.
type Talbot struct {
	// M is the number of contour nodes (also the achievable significant
	// digits is roughly 0.6*M in exact arithmetic; float64 caps it).
	M int
}

// NewTalbot returns a Talbot inverter with M=32 nodes.
func NewTalbot() *Talbot { return &Talbot{M: 32} }

// Name implements Inverter.
func (tb *Talbot) Name() string { return "talbot" }

// Invert implements Inverter.
func (tb *Talbot) Invert(f TransformFunc, t float64) float64 {
	if t <= 0 {
		return 0
	}
	m := tb.M
	if m < 2 {
		m = 2
	}
	r := 2 * float64(m) / (5 * t)
	sum := 0.5 * math.Exp(r*t) * real(f(complex(r, 0)))
	for k := 1; k < m; k++ {
		theta := float64(k) * math.Pi / float64(m)
		cot := math.Cos(theta) / math.Sin(theta)
		sk := complex(r*theta*cot, r*theta)
		sigma := theta + (theta*cot-1)*cot
		term := cmplx.Exp(complex(t, 0)*sk) * f(sk) * complex(1, sigma)
		sum += real(term)
	}
	return r / float64(m) * sum
}

// GaverStehfest implements the Gaver–Stehfest algorithm. It evaluates the
// transform only on the real axis, which makes it attractive when the
// transform is awkward for complex arguments, but it is numerically fragile
// in double precision: N beyond ~14 loses all accuracy to cancellation.
type GaverStehfest struct {
	// N is the (even) number of terms. Default 14.
	N int

	coef []float64
}

// NewGaverStehfest returns a Gaver–Stehfest inverter with N=14.
func NewGaverStehfest() *GaverStehfest { return &GaverStehfest{N: 14} }

// Name implements Inverter.
func (g *GaverStehfest) Name() string { return "gaver-stehfest" }

func (g *GaverStehfest) initCoef() {
	n := g.N
	if n <= 0 {
		n = 14
		g.N = n
	}
	if n%2 == 1 {
		n++
		g.N = n
	}
	g.coef = make([]float64, n+1)
	half := n / 2
	for k := 1; k <= n; k++ {
		var sum float64
		lo := (k + 1) / 2
		hi := min(k, half)
		for j := lo; j <= hi; j++ {
			term := math.Pow(float64(j), float64(half)) * factorial(2*j)
			term /= factorial(half-j) * factorial(j) * factorial(j-1) *
				factorial(k-j) * factorial(2*j-k)
			sum += term
		}
		if (k+half)%2 == 1 {
			sum = -sum
		}
		g.coef[k] = sum
	}
}

// Invert implements Inverter.
func (g *GaverStehfest) Invert(f TransformFunc, t float64) float64 {
	if t <= 0 {
		return 0
	}
	if g.coef == nil {
		g.initCoef()
	}
	ln2t := math.Ln2 / t
	var sum float64
	for k := 1; k <= g.N; k++ {
		sum += g.coef[k] * real(f(complex(float64(k)*ln2t, 0)))
	}
	return ln2t * sum
}

func factorial(n int) float64 {
	r := 1.0
	for i := 2; i <= n; i++ {
		r *= float64(i)
	}
	return r
}

func binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := 1.0
	for i := 0; i < k; i++ {
		r = r * float64(n-i) / float64(i+1)
	}
	return r
}

// InvertCDF inverts the transform of a probability density f̂ into its CDF at
// t, clamping the result to [0, 1]. The CDF transform is f̂(s)/s.
func InvertCDF(inv Inverter, pdfTransform TransformFunc, t float64) float64 {
	if t <= 0 {
		return 0
	}
	v := inv.Invert(func(s complex128) complex128 {
		return pdfTransform(s) / s
	}, t)
	return Clamp01(v)
}

// Clamp01 clamps v to the closed unit interval.
func Clamp01(v float64) float64 {
	switch {
	case math.IsNaN(v):
		return 0
	case v < 0:
		return 0
	case v > 1:
		return 1
	}
	return v
}

// MeanFromLST estimates the mean of a nonnegative random variable from its
// LST by one-sided numerical differentiation at the origin:
// E[X] = -d/ds E[e^{-sX}] at s=0.
func MeanFromLST(f TransformFunc, scale float64) float64 {
	if scale <= 0 {
		scale = 1
	}
	h := 1e-6 / scale
	// 4th-order one-sided difference for -f'(0) with f(0)=1.
	f1 := real(f(complex(h, 0)))
	f2 := real(f(complex(2*h, 0)))
	f3 := real(f(complex(3*h, 0)))
	f4 := real(f(complex(4*h, 0)))
	return -(-25.0/12.0 + 4*f1 - 3*f2 + 4.0/3.0*f3 - 0.25*f4) / h
}
