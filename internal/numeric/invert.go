// Package numeric provides the numerical substrate used by the analytic
// model: numerical inversion of Laplace transforms, special functions
// (regularized incomplete gamma, digamma), adaptive quadrature, and root
// finding. Everything is implemented with the standard library only.
package numeric

import (
	"math"
	"math/cmplx"
	"sync"
)

// TransformFunc is a Laplace transform evaluated at a complex frequency s.
// For the model it is either the transform of a probability density
// (a Laplace–Stieltjes transform, LST) or of a CDF (LST divided by s).
type TransformFunc func(s complex128) complex128

// Inverter numerically inverts a Laplace transform, recovering the original
// time-domain function at a given point t > 0.
//
// Safety contract: every implementation in this package is safe for
// concurrent use by multiple goroutines once constructed — all coefficient
// tables are computed in the constructors (with a sync.Once fallback for
// zero values), and Invert never mutates the receiver. Custom
// implementations passed into the model are expected to honor the same
// contract: the evaluation engine shares one Inverter across its worker
// pool. Parameter fields (Euler.A, Talbot.M, ...) must not be modified
// after the first Invert call.
type Inverter interface {
	// Invert evaluates the inverse transform of f at time t. t must be
	// positive; behaviour for t <= 0 is implementation-defined (the
	// implementations in this package return 0).
	Invert(f TransformFunc, t float64) float64
	// Name identifies the algorithm, for reports and ablation tables.
	Name() string
}

// NodeInverter is an Inverter whose rule is a fixed weighted sum of
// transform evaluations:
//
//	Invert(f, t) = Σ_k Re(w_k · f(s_k))
//
// Exposing the quadrature lets an evaluation engine invert many transforms
// that share factors — e.g. a mixture of per-device convolutions with a
// common frontend term — by evaluating the shared factor once per node and
// only the distinct factors per member, with results identical to
// independent Invert calls. All inverters in this package implement it.
type NodeInverter interface {
	Inverter
	// AppendNodes appends the quadrature nodes and matching weights for
	// time t to s and w and returns the extended slices. For t <= 0 the
	// slices are returned unchanged (Invert is identically 0 there).
	AppendNodes(s, w []complex128, t float64) ([]complex128, []complex128)
}

// Euler implements the Abate–Whitt "EULER" algorithm: a Fourier-series
// expansion of the Bromwich integral accelerated with Euler summation.
// It is the workhorse inverter for this package: robust for probability
// CDFs, including those with atoms away from the evaluation point.
//
// The zero value is NOT ready for use; call NewEuler or set the fields
// before first use (they must not change afterwards).
type Euler struct {
	// A controls the discretization error bound (roughly e^-A). 18.4
	// targets ~1e-8 discretization error in double precision.
	A float64
	// Terms is the number of plain partial-sum terms before Euler
	// acceleration kicks in.
	Terms int
	// MTerms is the number of terms combined binomially by Euler
	// summation.
	MTerms int

	once sync.Once
	// weights[k] is the flattened Euler-accelerated weight of node k: the
	// alternating sign times the binomial tail Σ_{j≥k-Terms} C(M,j)/2^M
	// (1 for k ≤ Terms, halved at k = 0).
	weights []float64
}

// NewEuler returns an Euler inverter with the standard Abate–Whitt
// parameters (A=18.4, 15 plain terms, 11 Euler terms).
func NewEuler() *Euler {
	return NewEulerN(18.4, 15, 11)
}

// NewEulerN returns an Euler inverter with explicit parameters.
func NewEulerN(a float64, terms, mTerms int) *Euler {
	e := &Euler{A: a, Terms: terms, MTerms: mTerms}
	e.init()
	return e
}

// init precomputes the node weights exactly once; constructors call it
// eagerly so constructed inverters are immutable, and Invert calls it
// through the sync.Once to keep manually-filled values safe.
func (e *Euler) init() {
	e.once.Do(func() {
		m := e.MTerms
		binom := make([]float64, m+1) // C(m,j)/2^m
		c := math.Exp2(-float64(m))
		for j := 0; j <= m; j++ {
			binom[j] = c
			c = c * float64(m-j) / float64(j+1)
		}
		// Suffix sums: tail[i] = Σ_{j=i..m} binom[j] (tail[0] ≈ 1).
		tail := make([]float64, m+2)
		for j := m; j >= 0; j-- {
			tail[j] = tail[j+1] + binom[j]
		}
		e.weights = make([]float64, e.Terms+m+1)
		for k := range e.weights {
			w := tail[0]
			if k > e.Terms {
				w = tail[k-e.Terms]
			}
			if k == 0 {
				w /= 2
			}
			if k%2 == 1 {
				w = -w
			}
			e.weights[k] = w
		}
	})
}

// Name implements Inverter.
func (e *Euler) Name() string { return "euler" }

// Invert implements Inverter.
func (e *Euler) Invert(f TransformFunc, t float64) float64 {
	if t <= 0 {
		return 0
	}
	e.init()
	x := e.A / (2 * t)
	h := math.Pi / t
	u := math.Exp(e.A/2) / t
	var sum float64
	for k, w := range e.weights {
		sum += (u * w) * real(f(complex(x, float64(k)*h)))
	}
	return sum
}

// AppendNodes implements NodeInverter.
func (e *Euler) AppendNodes(s, w []complex128, t float64) ([]complex128, []complex128) {
	if t <= 0 {
		return s, w
	}
	e.init()
	x := e.A / (2 * t)
	h := math.Pi / t
	u := math.Exp(e.A/2) / t
	for k, wk := range e.weights {
		s = append(s, complex(x, float64(k)*h))
		w = append(w, complex(u*wk, 0))
	}
	return s, w
}

// Talbot implements the fixed-Talbot method (Abate–Valkó). It deforms the
// Bromwich contour into a cotangent spiral; excellent for smooth functions,
// less robust than Euler near discontinuities. It holds no mutable state
// and is safe for concurrent use.
type Talbot struct {
	// M is the number of contour nodes (also the achievable significant
	// digits is roughly 0.6*M in exact arithmetic; float64 caps it).
	M int
}

// NewTalbot returns a Talbot inverter with M=32 nodes.
func NewTalbot() *Talbot { return &Talbot{M: 32} }

// Name implements Inverter.
func (tb *Talbot) Name() string { return "talbot" }

func (tb *Talbot) nodes() int {
	if tb.M < 2 {
		return 2
	}
	return tb.M
}

// node returns the k-th contour node and its weight for time t.
func (tb *Talbot) node(k int, t float64) (s, w complex128) {
	m := tb.nodes()
	r := 2 * float64(m) / (5 * t)
	if k == 0 {
		return complex(r, 0), complex(0.5*math.Exp(r*t)*r/float64(m), 0)
	}
	theta := float64(k) * math.Pi / float64(m)
	cot := math.Cos(theta) / math.Sin(theta)
	s = complex(r*theta*cot, r*theta)
	sigma := theta + (theta*cot-1)*cot
	w = complex(r/float64(m), 0) * cmplx.Exp(complex(t, 0)*s) * complex(1, sigma)
	return s, w
}

// Invert implements Inverter.
func (tb *Talbot) Invert(f TransformFunc, t float64) float64 {
	if t <= 0 {
		return 0
	}
	var sum float64
	for k := 0; k < tb.nodes(); k++ {
		s, w := tb.node(k, t)
		sum += real(w * f(s))
	}
	return sum
}

// AppendNodes implements NodeInverter.
func (tb *Talbot) AppendNodes(s, w []complex128, t float64) ([]complex128, []complex128) {
	if t <= 0 {
		return s, w
	}
	for k := 0; k < tb.nodes(); k++ {
		sk, wk := tb.node(k, t)
		s = append(s, sk)
		w = append(w, wk)
	}
	return s, w
}

// GaverStehfest implements the Gaver–Stehfest algorithm. It evaluates the
// transform only on the real axis, which makes it attractive when the
// transform is awkward for complex arguments, but it is numerically fragile
// in double precision: N beyond ~14 loses all accuracy to cancellation.
type GaverStehfest struct {
	// N is the (even) number of terms. Default 14.
	N int

	once sync.Once
	n    int // effective (evened, defaulted) term count
	coef []float64
}

// NewGaverStehfest returns a Gaver–Stehfest inverter with N=14.
func NewGaverStehfest() *GaverStehfest {
	g := &GaverStehfest{N: 14}
	g.init()
	return g
}

// Name implements Inverter.
func (g *GaverStehfest) Name() string { return "gaver-stehfest" }

// init computes the Stehfest coefficients exactly once (see Euler.init).
func (g *GaverStehfest) init() {
	g.once.Do(func() {
		n := g.N
		if n <= 0 {
			n = 14
		}
		if n%2 == 1 {
			n++
		}
		g.n = n
		g.coef = make([]float64, n+1)
		half := n / 2
		for k := 1; k <= n; k++ {
			var sum float64
			lo := (k + 1) / 2
			hi := min(k, half)
			for j := lo; j <= hi; j++ {
				term := math.Pow(float64(j), float64(half)) * factorial(2*j)
				term /= factorial(half-j) * factorial(j) * factorial(j-1) *
					factorial(k-j) * factorial(2*j-k)
				sum += term
			}
			if (k+half)%2 == 1 {
				sum = -sum
			}
			g.coef[k] = sum
		}
	})
}

// Invert implements Inverter.
func (g *GaverStehfest) Invert(f TransformFunc, t float64) float64 {
	if t <= 0 {
		return 0
	}
	g.init()
	ln2t := math.Ln2 / t
	var sum float64
	for k := 1; k <= g.n; k++ {
		sum += (ln2t * g.coef[k]) * real(f(complex(float64(k)*ln2t, 0)))
	}
	return sum
}

// AppendNodes implements NodeInverter.
func (g *GaverStehfest) AppendNodes(s, w []complex128, t float64) ([]complex128, []complex128) {
	if t <= 0 {
		return s, w
	}
	g.init()
	ln2t := math.Ln2 / t
	for k := 1; k <= g.n; k++ {
		s = append(s, complex(float64(k)*ln2t, 0))
		w = append(w, complex(ln2t*g.coef[k], 0))
	}
	return s, w
}

func factorial(n int) float64 {
	r := 1.0
	for i := 2; i <= n; i++ {
		r *= float64(i)
	}
	return r
}

// InvertCDF inverts the transform of a probability density f̂ into its CDF at
// t, clamping the result to [0, 1]. The CDF transform is f̂(s)/s.
func InvertCDF(inv Inverter, pdfTransform TransformFunc, t float64) float64 {
	if t <= 0 {
		return 0
	}
	v := inv.Invert(func(s complex128) complex128 {
		return pdfTransform(s) / s
	}, t)
	return Clamp01(v)
}

// Clamp01 clamps v to the closed unit interval.
func Clamp01(v float64) float64 {
	switch {
	case math.IsNaN(v):
		return 0
	case v < 0:
		return 0
	case v > 1:
		return 1
	}
	return v
}

// MeanFromLST estimates the mean of a nonnegative random variable from its
// LST by one-sided numerical differentiation at the origin:
// E[X] = -d/ds E[e^{-sX}] at s=0.
func MeanFromLST(f TransformFunc, scale float64) float64 {
	if scale <= 0 {
		scale = 1
	}
	h := 1e-6 / scale
	// 4th-order one-sided difference for -f'(0) with f(0)=1.
	f1 := real(f(complex(h, 0)))
	f2 := real(f(complex(2*h, 0)))
	f3 := real(f(complex(3*h, 0)))
	f4 := real(f(complex(4*h, 0)))
	return -(-25.0/12.0 + 4*f1 - 3*f2 + 4.0/3.0*f3 - 0.25*f4) / h
}
