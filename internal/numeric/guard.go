package numeric

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrNumerical reports that numerical Laplace inversion produced an invalid
// result (NaN, infinity, a value far outside [0,1] for a CDF, or a grossly
// non-monotone CDF) and that every configured fallback inverter failed too.
// It is the structured alternative to silently returning garbage: callers
// can errors.Is against it and degrade (shed the query, report unhealthy)
// instead of propagating a poisoned prediction.
var ErrNumerical = errors.New("numeric: inversion produced an invalid result")

// CDFSlack is the tolerance applied when validating an inverted CDF value:
// inversion noise legitimately overshoots [0,1] by a small amount (and is
// clamped), but an excursion beyond this slack marks the inversion itself
// as broken rather than merely noisy.
const CDFSlack = 0.05

// InversionError details one failed guarded inversion. It wraps
// ErrNumerical, so errors.Is(err, ErrNumerical) matches.
type InversionError struct {
	// T is the evaluation time.
	T float64
	// Value is the offending value produced by the last inverter tried.
	Value float64
	// Reason describes what made the value invalid.
	Reason string
	// Tried lists the inverter names attempted, in order.
	Tried []string
}

func (e *InversionError) Error() string {
	return fmt.Sprintf("%v: %s at t=%g (got %g; tried %s)",
		ErrNumerical, e.Reason, e.T, e.Value, strings.Join(e.Tried, ", "))
}

func (e *InversionError) Unwrap() error { return ErrNumerical }

// CheckCDF validates v as a plausible inverted-CDF value. It returns a
// non-empty reason when v is NaN, infinite, or outside [0,1] by more than
// CDFSlack, and "" when v is acceptable (possibly needing a clamp).
func CheckCDF(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN CDF value"
	case math.IsInf(v, 0):
		return "infinite CDF value"
	case v < -CDFSlack:
		return fmt.Sprintf("CDF value below 0 by %g", -v)
	case v > 1+CDFSlack:
		return fmt.Sprintf("CDF value above 1 by %g", v-1)
	}
	return ""
}

// defaultFallbacks is the shared fallback chain; inverters are immutable
// after construction, so the instances can be shared by every caller.
var defaultFallbacks = []Inverter{NewEuler(), NewGaverStehfest()}

// DefaultFallbacks returns the standard fallback inverter chain tried when
// a primary inverter produces an invalid CDF value: Euler first (the
// robust workhorse), then Gaver–Stehfest (real-axis evaluation, a genuinely
// different failure surface). The returned slice is shared; callers must
// not modify it.
func DefaultFallbacks() []Inverter { return defaultFallbacks }

// InvertCDFGuarded inverts the transform of a probability density into its
// CDF at t, validating the result and retrying across fallbacks when the
// primary inverter produces an invalid value. Fallbacks whose Name matches
// an already-tried inverter are skipped. On success it returns the clamped
// CDF value and the name of the inverter that produced it; when every
// inverter fails it returns a *InversionError (wrapping ErrNumerical)
// instead of garbage.
func InvertCDFGuarded(primary Inverter, fallbacks []Inverter, pdfTransform TransformFunc, t float64) (float64, string, error) {
	if t <= 0 {
		return 0, primary.Name(), nil
	}
	cdfT := func(s complex128) complex128 { return pdfTransform(s) / s }
	v := primary.Invert(cdfT, t)
	reason := CheckCDF(v)
	if reason == "" {
		return Clamp01(v), primary.Name(), nil
	}
	tried := []string{primary.Name()}
	for _, fb := range fallbacks {
		if fb == nil || triedName(tried, fb.Name()) {
			continue
		}
		tried = append(tried, fb.Name())
		fv := fb.Invert(cdfT, t)
		if CheckCDF(fv) == "" {
			return Clamp01(fv), fb.Name(), nil
		}
		v = fv
	}
	return 0, "", &InversionError{T: t, Value: v, Reason: reason, Tried: tried}
}

func triedName(names []string, name string) bool {
	for _, n := range names {
		if n == name {
			return true
		}
	}
	return false
}
