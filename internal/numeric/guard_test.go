package numeric

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestCheckCDF(t *testing.T) {
	cases := []struct {
		v    float64
		want bool // valid
	}{
		{0, true}, {1, true}, {0.5, true},
		{-0.04, true}, {1.04, true}, // inside the slack: clamped, not broken
		{-0.2, false}, {1.2, false},
		{math.NaN(), false},
		{math.Inf(1), false}, {math.Inf(-1), false},
	}
	for _, c := range cases {
		reason := CheckCDF(c.v)
		if (reason == "") != c.want {
			t.Errorf("CheckCDF(%v) = %q, want valid=%v", c.v, reason, c.want)
		}
	}
}

// brokenInverter always produces the same invalid value.
type brokenInverter struct {
	name string
	v    float64
}

func (b brokenInverter) Invert(TransformFunc, float64) float64 { return b.v }
func (b brokenInverter) Name() string                          { return b.name }

// expPDF100 is the transform of an Exp(λ=100) density; its CDF at t is
// 1-exp(-100t).
func expPDF100(s complex128) complex128 { return 100 / (s + 100) }

func TestInvertCDFGuardedPrimarySucceeds(t *testing.T) {
	v, by, err := InvertCDFGuarded(NewEuler(), DefaultFallbacks(), expPDF100, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - math.Exp(-2)
	if math.Abs(v-want) > 1e-6 {
		t.Errorf("CDF = %v, want %v", v, want)
	}
	if by != NewEuler().Name() {
		t.Errorf("answered by %q, want the primary", by)
	}
}

func TestInvertCDFGuardedFallsBack(t *testing.T) {
	v, by, err := InvertCDFGuarded(brokenInverter{"nan", math.NaN()}, DefaultFallbacks(), expPDF100, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if by != NewEuler().Name() {
		t.Errorf("answered by %q, want the first fallback", by)
	}
	if math.Abs(v-(1-math.Exp(-2))) > 1e-6 {
		t.Errorf("fallback CDF = %v", v)
	}
}

func TestInvertCDFGuardedExhaustion(t *testing.T) {
	fallbacks := []Inverter{brokenInverter{"fb1", 7}, nil, brokenInverter{"fb2", math.Inf(1)}}
	_, _, err := InvertCDFGuarded(brokenInverter{"primary", math.NaN()}, fallbacks, expPDF100, 0.02)
	if !errors.Is(err, ErrNumerical) {
		t.Fatalf("err = %v, want ErrNumerical", err)
	}
	var ie *InversionError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %T, want *InversionError", err)
	}
	if ie.T != 0.02 || ie.Reason == "" {
		t.Errorf("InversionError %+v", ie)
	}
	if len(ie.Tried) != 3 {
		t.Errorf("tried %v, want primary and both fallbacks", ie.Tried)
	}
	if !strings.Contains(err.Error(), "primary") {
		t.Errorf("error %q should name the inverters tried", err)
	}
}

func TestInvertCDFGuardedSkipsDuplicateFallback(t *testing.T) {
	// The primary IS Euler; the chain must not retry the same algorithm.
	calls := 0
	counting := inverterFunc{
		name: NewEuler().Name(),
		fn: func(f TransformFunc, t float64) float64 {
			calls++
			return math.NaN()
		},
	}
	_, _, err := InvertCDFGuarded(counting, []Inverter{counting, NewGaverStehfest()}, expPDF100, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("same-name inverter ran %d times, want 1", calls)
	}
}

func TestInvertCDFGuardedNonPositiveT(t *testing.T) {
	v, _, err := InvertCDFGuarded(brokenInverter{"nan", math.NaN()}, nil, expPDF100, 0)
	if err != nil || v != 0 {
		t.Errorf("t=0: v=%v err=%v, want 0, nil without invoking the inverter", v, err)
	}
}

type inverterFunc struct {
	name string
	fn   func(TransformFunc, float64) float64
}

func (i inverterFunc) Invert(f TransformFunc, t float64) float64 { return i.fn(f, t) }
func (i inverterFunc) Name() string                              { return i.name }

// TestDefaultFallbacksDiffer sanity-checks the chain offers genuinely
// distinct algorithms (distinct names drive the dedup).
func TestDefaultFallbacksDiffer(t *testing.T) {
	fbs := DefaultFallbacks()
	if len(fbs) < 2 {
		t.Fatalf("fallback chain %v too short", fbs)
	}
	seen := map[string]bool{}
	for _, fb := range fbs {
		if seen[fb.Name()] {
			t.Errorf("duplicate fallback %q", fb.Name())
		}
		seen[fb.Name()] = true
	}
	// Both must actually invert a well-behaved transform.
	for _, fb := range fbs {
		v := fb.Invert(func(s complex128) complex128 { return expPDF100(s) / s }, 0.02)
		if math.Abs(v-(1-math.Exp(-2))) > 1e-3 {
			t.Errorf("%s inverted to %v", fb.Name(), v)
		}
	}
}
