package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRegularizedGammaPKnownValues(t *testing.T) {
	cases := []struct{ a, x, want float64 }{
		// P(1, x) = 1 - e^{-x}
		{1, 0.5, 1 - math.Exp(-0.5)},
		{1, 2, 1 - math.Exp(-2)},
		// P(2, x) = 1 - e^{-x}(1+x)
		{2, 1, 1 - math.Exp(-1)*2},
		{2, 3, 1 - math.Exp(-3)*4},
		// P(0.5, x) = erf(sqrt(x))
		{0.5, 0.25, math.Erf(0.5)},
		{0.5, 4, math.Erf(2)},
	}
	for _, c := range cases {
		if got := RegularizedGammaP(c.a, c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("P(%v,%v) = %v, want %v", c.a, c.x, got, c.want)
		}
	}
}

func TestRegularizedGammaEdgeCases(t *testing.T) {
	if got := RegularizedGammaP(2, 0); got != 0 {
		t.Errorf("P(2,0) = %v, want 0", got)
	}
	if got := RegularizedGammaQ(2, 0); got != 1 {
		t.Errorf("Q(2,0) = %v, want 1", got)
	}
	if !math.IsNaN(RegularizedGammaP(0, 1)) {
		t.Error("P(0,1) should be NaN")
	}
	if !math.IsNaN(RegularizedGammaP(-1, 1)) {
		t.Error("P(-1,1) should be NaN")
	}
}

func TestRegularizedGammaComplementProperty(t *testing.T) {
	f := func(aRaw, xRaw float64) bool {
		a := 0.1 + math.Mod(math.Abs(aRaw), 50)
		x := math.Mod(math.Abs(xRaw), 100)
		p := RegularizedGammaP(a, x)
		q := RegularizedGammaQ(a, x)
		return p >= -1e-14 && p <= 1+1e-14 && math.Abs(p+q-1) < 1e-10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegularizedGammaMonotone(t *testing.T) {
	for _, a := range []float64{0.3, 1, 2.7, 15} {
		prev := -1.0
		for x := 0.0; x < 8*a; x += 0.1 * a {
			p := RegularizedGammaP(a, x)
			if p < prev-1e-12 {
				t.Fatalf("P(%v,·) not monotone at x=%v: %v < %v", a, x, p, prev)
			}
			prev = p
		}
	}
}

func TestDigamma(t *testing.T) {
	const euler = 0.5772156649015329
	cases := []struct{ x, want float64 }{
		{1, -euler},
		{2, 1 - euler},
		{0.5, -euler - 2*math.Ln2},
		{10, 2.2517525890667214}, // reference value
	}
	for _, c := range cases {
		if got := Digamma(c.x); math.Abs(got-c.want) > 1e-10 {
			t.Errorf("Digamma(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if !math.IsNaN(Digamma(-1)) || !math.IsNaN(Digamma(0)) {
		t.Error("Digamma should be NaN for x <= 0")
	}
}

func TestDigammaRecurrence(t *testing.T) {
	// ψ(x+1) = ψ(x) + 1/x
	for _, x := range []float64{0.2, 1.5, 3.3, 12} {
		lhs := Digamma(x + 1)
		rhs := Digamma(x) + 1/x
		if math.Abs(lhs-rhs) > 1e-10 {
			t.Errorf("recurrence fails at %v: %v vs %v", x, lhs, rhs)
		}
	}
}

func TestTrigamma(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{1, math.Pi * math.Pi / 6},
		{0.5, math.Pi * math.Pi / 2},
		{2, math.Pi*math.Pi/6 - 1},
	}
	for _, c := range cases {
		if got := Trigamma(c.x); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Trigamma(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestNormalCDFQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{0.001, 0.01, 0.1, 0.25, 0.5, 0.9, 0.975, 0.999} {
		z := NormalQuantile(p)
		if got := NormalCDF(z); math.Abs(got-p) > 1e-9 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
	if NormalQuantile(0) != math.Inf(-1) || NormalQuantile(1) != math.Inf(1) {
		t.Error("quantile endpoints should be infinite")
	}
	if !math.IsNaN(NormalQuantile(-0.1)) || !math.IsNaN(NormalQuantile(1.1)) {
		t.Error("quantile outside [0,1] should be NaN")
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	if got := NormalCDF(0); math.Abs(got-0.5) > 1e-15 {
		t.Errorf("CDF(0) = %v", got)
	}
	if got := NormalCDF(1.959963984540054); math.Abs(got-0.975) > 1e-12 {
		t.Errorf("CDF(1.96) = %v", got)
	}
}
