package numeric

import (
	"math"
)

// RegularizedGammaP computes P(a, x) = γ(a, x) / Γ(a), the regularized lower
// incomplete gamma function, for a > 0 and x >= 0. It is the CDF of a
// Gamma(shape=a, rate=1) random variable evaluated at x.
func RegularizedGammaP(a, x float64) float64 {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x <= 0:
		return 0
	case x < a+1:
		return gammaPSeries(a, x)
	default:
		return 1 - gammaQContinuedFraction(a, x)
	}
}

// RegularizedGammaQ computes Q(a, x) = 1 - P(a, x).
func RegularizedGammaQ(a, x float64) float64 {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x <= 0:
		return 1
	case x < a+1:
		return 1 - gammaPSeries(a, x)
	default:
		return gammaQContinuedFraction(a, x)
	}
}

const (
	gammaEps     = 1e-15
	gammaMaxIter = 500
)

// gammaPSeries evaluates P(a,x) by its power series, convergent for x < a+1.
func gammaPSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < gammaMaxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*gammaEps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaQContinuedFraction evaluates Q(a,x) by the Lentz continued fraction,
// convergent for x >= a+1.
func gammaQContinuedFraction(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= gammaMaxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < gammaEps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// Digamma computes ψ(x), the logarithmic derivative of the gamma function,
// for x > 0, using upward recurrence into the asymptotic region.
func Digamma(x float64) float64 {
	if x <= 0 || math.IsNaN(x) {
		return math.NaN()
	}
	result := 0.0
	for x < 6 {
		result -= 1 / x
		x++
	}
	// Asymptotic expansion (Bernoulli series).
	inv := 1 / x
	inv2 := inv * inv
	result += math.Log(x) - 0.5*inv
	result -= inv2 * (1.0/12 - inv2*(1.0/120-inv2*(1.0/252-inv2*(1.0/240-inv2/132*1.0))))
	return result
}

// Trigamma computes ψ'(x) for x > 0.
func Trigamma(x float64) float64 {
	if x <= 0 || math.IsNaN(x) {
		return math.NaN()
	}
	result := 0.0
	for x < 6 {
		result += 1 / (x * x)
		x++
	}
	inv := 1 / x
	inv2 := inv * inv
	result += inv * (1 + 0.5*inv + inv2*(1.0/6-inv2*(1.0/30-inv2*(1.0/42-inv2/30))))
	return result
}

// NormalCDF is the standard normal cumulative distribution function.
func NormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// NormalQuantile is the standard normal quantile (inverse CDF), computed via
// the Acklam rational approximation refined with one Halley step.
func NormalQuantile(p float64) float64 {
	switch {
	case math.IsNaN(p) || p < 0 || p > 1:
		return math.NaN()
	case p == 0:
		return math.Inf(-1)
	case p == 1:
		return math.Inf(1)
	}
	// Acklam's approximation.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const pLow = 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}
