package numeric

import (
	"math"
	"testing"
)

func TestIntegrateAdaptivePolynomial(t *testing.T) {
	got := IntegrateAdaptive(func(x float64) float64 { return 3*x*x + 2*x + 1 }, 0, 2, 1e-12)
	want := 8.0 + 4 + 2
	if math.Abs(got-want) > 1e-10 {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestIntegrateAdaptiveSine(t *testing.T) {
	got := IntegrateAdaptive(math.Sin, 0, math.Pi, 1e-12)
	if math.Abs(got-2) > 1e-9 {
		t.Errorf("∫sin over [0,π] = %v, want 2", got)
	}
}

func TestIntegrateAdaptiveEmptyInterval(t *testing.T) {
	if got := IntegrateAdaptive(math.Exp, 1, 1, 1e-9); got != 0 {
		t.Errorf("got %v, want 0", got)
	}
}

func TestIntegrateToInfinityExponential(t *testing.T) {
	got := IntegrateToInfinity(func(x float64) float64 { return math.Exp(-x) }, 0, 1e-10)
	if math.Abs(got-1) > 1e-8 {
		t.Errorf("∫e^-x = %v, want 1", got)
	}
	got = IntegrateToInfinity(func(x float64) float64 { return math.Exp(-2 * x) }, 1, 1e-10)
	want := math.Exp(-2) / 2
	if math.Abs(got-want) > 1e-8 {
		t.Errorf("tail integral = %v, want %v", got, want)
	}
}

func TestTrapezoid(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{0, 1, 2, 3}
	if got := Trapezoid(xs, ys); math.Abs(got-4.5) > 1e-12 {
		t.Errorf("got %v, want 4.5", got)
	}
	if got := Trapezoid([]float64{0}, []float64{1}); !math.IsNaN(got) {
		t.Errorf("short input should give NaN, got %v", got)
	}
	if got := Trapezoid(xs, ys[:3]); !math.IsNaN(got) {
		t.Errorf("mismatched input should give NaN, got %v", got)
	}
}

func TestBisect(t *testing.T) {
	root, err := Bisect(func(x float64) float64 { return x*x - 2 }, 0, 2, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(root-math.Sqrt2) > 1e-10 {
		t.Errorf("root = %v, want sqrt(2)", root)
	}
	if _, err := Bisect(func(x float64) float64 { return x*x + 1 }, -1, 1, 1e-12); err != ErrNoBracket {
		t.Errorf("want ErrNoBracket, got %v", err)
	}
}

func TestBisectExactEndpoints(t *testing.T) {
	f := func(x float64) float64 { return x - 1 }
	if root, err := Bisect(f, 1, 2, 1e-12); err != nil || root != 1 {
		t.Errorf("root at left endpoint: got %v, %v", root, err)
	}
	if root, err := Bisect(f, 0, 1, 1e-12); err != nil || root != 1 {
		t.Errorf("root at right endpoint: got %v, %v", root, err)
	}
}

func TestBrent(t *testing.T) {
	root, err := Brent(func(x float64) float64 { return math.Cos(x) - x }, 0, 1, 1e-14)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(math.Cos(root)-root) > 1e-12 {
		t.Errorf("f(root) = %v", math.Cos(root)-root)
	}
	if _, err := Brent(func(x float64) float64 { return 1.0 }, 0, 1, 1e-12); err != ErrNoBracket {
		t.Errorf("want ErrNoBracket, got %v", err)
	}
}

func TestNewtonWithFallback(t *testing.T) {
	f := func(x float64) float64 { return x*x*x - 8 }
	df := func(x float64) float64 { return 3 * x * x }
	root, err := NewtonWithFallback(f, df, 1, 0, 10, 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(root-2) > 1e-10 {
		t.Errorf("root = %v, want 2", root)
	}
	// Degenerate derivative must fall back to bisection.
	root, err = NewtonWithFallback(f, func(float64) float64 { return 0 }, 1, 0, 10, 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(root-2) > 1e-9 {
		t.Errorf("fallback root = %v, want 2", root)
	}
}
