package numeric

import (
	"errors"
	"math"
	"testing"
)

// wrap lifts an ordinary function into the probe shape.
func wrap(f func(float64) float64, calls *int) func(float64) (float64, error) {
	return func(x float64) (float64, error) {
		if calls != nil {
			*calls++
		}
		return f(x), nil
	}
}

func TestBrentGuardedFindsSmoothRoot(t *testing.T) {
	// A CDF-shaped residual: monotone, smooth, root at ln(2)/3.
	f := func(x float64) float64 { return (1 - math.Exp(-3*x)) - 0.5 }
	want := math.Log(2) / 3
	calls := 0
	got, err := BrentGuarded(wrap(f, &calls), 0, f(0), 1, f(1), 0, CDFSlack)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("root = %v, want %v (|Δ| = %g)", got, want, math.Abs(got-want))
	}
	// False position on a smooth monotone function should converge far
	// faster than the ~50 probes full-precision bisection would need.
	if calls > 40 {
		t.Errorf("smooth root took %d probes", calls)
	}
}

func TestBrentGuardedHonorsXtol(t *testing.T) {
	f := func(x float64) float64 { return x - 0.25 }
	got, err := BrentGuarded(wrap(f, nil), 0, -0.25, 1, 0.75, 1e-3, CDFSlack)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.25) > 1e-3 {
		t.Errorf("root = %v outside xtol of 0.25", got)
	}
}

func TestBrentGuardedEndpointRoots(t *testing.T) {
	f := wrap(func(x float64) float64 { return x }, nil)
	if got, err := BrentGuarded(f, 0, 0, 1, 1, 0, CDFSlack); err != nil || got != 0 {
		t.Errorf("flo == 0: got %v, %v", got, err)
	}
	g := wrap(func(x float64) float64 { return x - 1 }, nil)
	if got, err := BrentGuarded(g, 0, -1, 1, 0, 0, CDFSlack); err != nil || got != 1 {
		t.Errorf("fhi == 0: got %v, %v", got, err)
	}
}

func TestBrentGuardedNoBracket(t *testing.T) {
	f := wrap(func(x float64) float64 { return x + 1 }, nil)
	for _, tc := range []struct{ lo, flo, hi, fhi float64 }{
		{0, 1, 1, 2},                 // flo positive: not a bracket
		{0, -1, 1, -0.5},             // fhi negative: not a bracket
		{1, -1, 0, 1},                // inverted interval
		{0, math.NaN(), 1, 1},        // NaN endpoint value
		{math.NaN(), -1, 1, 1},       // NaN endpoint
		{0, -1, math.NaN(), 1},       // NaN endpoint
		{0, math.Inf(1) * -1, 1, -1}, // -Inf flo is a bracket, but fhi < 0
	} {
		got, err := BrentGuarded(f, tc.lo, tc.flo, tc.hi, tc.fhi, 0, CDFSlack)
		if !errors.Is(err, ErrNoBracket) {
			t.Errorf("BrentGuarded(%v,%v,%v,%v): err = %v, want ErrNoBracket",
				tc.lo, tc.flo, tc.hi, tc.fhi, err)
		}
		if !math.IsNaN(got) {
			t.Errorf("no-bracket result %v, want NaN", got)
		}
	}
}

func TestBrentGuardedNonMonotoneGuard(t *testing.T) {
	// A probe escaping the bracket envelope by more than slack must abort
	// with a NonMonotoneError carrying the offending point.
	calls := 0
	f := func(x float64) (float64, error) {
		calls++
		return -0.9, nil // far below flo - slack for the bracket below
	}
	_, err := BrentGuarded(f, 0, -0.5, 1, 0.5, 0, 0.05)
	var nm *NonMonotoneError
	if !errors.As(err, &nm) {
		t.Fatalf("err = %v, want NonMonotoneError", err)
	}
	if !errors.Is(err, ErrNumerical) {
		t.Error("NonMonotoneError must unwrap to ErrNumerical")
	}
	if nm.F != -0.9 {
		t.Errorf("recorded escape value %v, want -0.9", nm.F)
	}
	if nm.X <= 0 || nm.X >= 1 {
		t.Errorf("recorded escape point %v outside the bracket", nm.X)
	}
}

func TestBrentGuardedRejectsNaNProbe(t *testing.T) {
	f := func(x float64) (float64, error) { return math.NaN(), nil }
	_, err := BrentGuarded(f, 0, -0.5, 1, 0.5, 0, 0.05)
	if !errors.Is(err, ErrNumerical) {
		t.Fatalf("NaN probe: err = %v, want ErrNumerical", err)
	}
}

func TestBrentGuardedPropagatesProbeError(t *testing.T) {
	boom := errors.New("boom")
	f := func(x float64) (float64, error) { return 0, boom }
	if _, err := BrentGuarded(f, 0, -0.5, 1, 0.5, 0, 0.05); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want probe error", err)
	}
}

func TestBrentGuardedStaircasePlateau(t *testing.T) {
	// A staircase CDF residual: flat at -0.1 on [0, 0.7), jumping to +0.4
	// at 0.7. Pure false position stalls against the flat side (every
	// secant lands just past lo); the bisection safeguard must keep
	// halving so the bracket still collapses onto the jump.
	jump := 0.7
	f := func(x float64) float64 {
		if x < jump {
			return -0.1
		}
		return 0.4
	}
	calls := 0
	got, err := BrentGuarded(wrap(f, &calls), 0, -0.1, 1, 0.4, 1e-9, CDFSlack)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-jump) > 1e-8 {
		t.Errorf("staircase root = %v, want %v", got, jump)
	}
	// The safeguard bounds the probe count near bisection's: ~30 halvings
	// reach 1e-9, with at most a constant-factor overhead from rejected
	// interpolation steps.
	if calls > 80 {
		t.Errorf("staircase took %d probes; the stall safeguard is not engaging", calls)
	}
}

func TestBrentGuardedFullPrecisionCollapse(t *testing.T) {
	// xtol <= 0 iterates until the bracket cannot shrink in float64.
	f := func(x float64) float64 { return x*x - 2 }
	got, err := BrentGuarded(wrap(f, nil), 0, -2, 2, 2, 0, CDFSlack)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-math.Sqrt2) > 4e-16 {
		t.Errorf("sqrt2 = %v, want %v", got, math.Sqrt2)
	}
}

// FuzzBrentGuarded drives the root finder with randomized monotone
// residuals and bracket shapes: on any valid bracket of a monotone function
// it must return a point inside [lo, hi] without error; errors are allowed
// only as ErrNoBracket (invalid input) — never a panic or an escape.
func FuzzBrentGuarded(f *testing.F) {
	f.Add(1.0, 0.5, 0.0, 1.0, 1e-9)
	f.Add(3.0, 0.1, 0.0, 10.0, 0.0)
	f.Add(0.2, 0.99, 0.5, 2.0, 1e-6)
	f.Fuzz(func(t *testing.T, rate, p, lo, hi, xtol float64) {
		if !(rate > 0) || rate > 1e6 || !(p > 0) || p >= 1 {
			t.Skip()
		}
		if !(lo >= 0) || !(hi > lo) || hi > 1e9 || math.IsNaN(xtol) || math.IsInf(xtol, 0) {
			t.Skip()
		}
		res := func(x float64) float64 { return (1 - math.Exp(-rate*x)) - p }
		flo, fhi := res(lo), res(hi)
		got, err := BrentGuarded(func(x float64) (float64, error) {
			if x < lo || x > hi {
				t.Fatalf("probe %v escaped bracket [%v, %v]", x, lo, hi)
			}
			return res(x), nil
		}, lo, flo, hi, fhi, xtol, CDFSlack)
		if err != nil {
			if errors.Is(err, ErrNoBracket) && (flo > 0 || fhi < 0) {
				return // genuinely unbracketed sample
			}
			t.Fatalf("BrentGuarded(rate=%v, p=%v, [%v,%v]): %v", rate, p, lo, hi, err)
		}
		if math.IsNaN(got) || got < lo || got > hi {
			t.Fatalf("root %v outside [%v, %v]", got, lo, hi)
		}
	})
}
