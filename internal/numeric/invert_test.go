package numeric

import (
	"math"
	"math/cmplx"
	"sync"
	"testing"
)

// expPDF is the transform of an Exponential(rate) density: rate/(s+rate).
func expPDF(rate float64) TransformFunc {
	return func(s complex128) complex128 {
		return complex(rate, 0) / (s + complex(rate, 0))
	}
}

// gammaPDF is the transform of a Gamma(shape k, rate l) density: (l/(s+l))^k.
func gammaPDF(k, l float64) TransformFunc {
	return func(s complex128) complex128 {
		return cmplx.Pow(complex(l, 0)/(s+complex(l, 0)), complex(k, 0))
	}
}

func inverters() []Inverter {
	return []Inverter{NewEuler(), NewTalbot(), NewGaverStehfest()}
}

func TestInvertExponentialDensity(t *testing.T) {
	const rate = 2.5
	for _, inv := range inverters() {
		tol := 1e-5
		if inv.Name() == "gaver-stehfest" {
			tol = 5e-4 // fragile in float64, by design
		}
		for _, x := range []float64{0.05, 0.2, 0.5, 1, 2, 4} {
			got := inv.Invert(expPDF(rate), x)
			want := rate * math.Exp(-rate*x)
			if math.Abs(got-want) > tol*(1+want) {
				t.Errorf("%s: pdf(%v) = %v, want %v", inv.Name(), x, got, want)
			}
		}
	}
}

func TestInvertExponentialCDF(t *testing.T) {
	const rate = 3.0
	for _, inv := range inverters() {
		tol := 1e-6
		if inv.Name() == "gaver-stehfest" {
			tol = 5e-4 // fragile in float64, by design
		}
		for _, x := range []float64{0.01, 0.1, 0.3, 1, 3} {
			got := InvertCDF(inv, expPDF(rate), x)
			want := 1 - math.Exp(-rate*x)
			if math.Abs(got-want) > tol {
				t.Errorf("%s: cdf(%v) = %v, want %v", inv.Name(), x, got, want)
			}
		}
	}
}

func TestInvertGammaCDF(t *testing.T) {
	cases := []struct{ k, l float64 }{
		{1, 1}, {2.5, 4}, {0.8, 10}, {7, 0.5},
	}
	for _, inv := range inverters() {
		for _, c := range cases {
			for _, x := range []float64{0.1, 0.5, 1, 2, 5} {
				got := InvertCDF(inv, gammaPDF(c.k, c.l), x)
				want := RegularizedGammaP(c.k, c.l*x)
				tol := 1e-6
				if inv.Name() == "gaver-stehfest" {
					tol = 1e-3 // fragile in float64, by design
				}
				if math.Abs(got-want) > tol {
					t.Errorf("%s: Gamma(%v,%v) cdf(%v) = %v, want %v",
						inv.Name(), c.k, c.l, x, got, want)
				}
			}
		}
	}
}

// TestInvertMixtureWithAtom checks a distribution with an atom at zero:
// with prob 0.4 value 0, otherwise Exponential(2). The CDF at t>0 is
// 0.4 + 0.6*(1-e^{-2t}).
func TestInvertMixtureWithAtom(t *testing.T) {
	f := func(s complex128) complex128 {
		return complex(0.4, 0) + complex(0.6, 0)*expPDF(2)(s)
	}
	inv := NewEuler()
	for _, x := range []float64{0.1, 0.5, 1, 2} {
		got := InvertCDF(inv, f, x)
		want := 0.4 + 0.6*(1-math.Exp(-2*x))
		if math.Abs(got-want) > 1e-6 {
			t.Errorf("cdf(%v) = %v, want %v", x, got, want)
		}
	}
}

// TestInvertDegenerateShift checks a transform with a pure delay:
// e^{-s c} is a point mass at c; its CDF is a step at c.
func TestInvertDegenerateShift(t *testing.T) {
	const c = 1.0
	f := func(s complex128) complex128 { return cmplx.Exp(-s * complex(c, 0)) }
	inv := NewEuler()
	if got := InvertCDF(inv, f, 0.5); got > 0.02 {
		t.Errorf("cdf before the step = %v, want ~0", got)
	}
	if got := InvertCDF(inv, f, 1.5); got < 0.98 {
		t.Errorf("cdf after the step = %v, want ~1", got)
	}
}

func TestInvertAtNonPositiveTime(t *testing.T) {
	for _, inv := range inverters() {
		if got := inv.Invert(expPDF(1), 0); got != 0 {
			t.Errorf("%s: Invert at t=0 = %v, want 0", inv.Name(), got)
		}
		if got := inv.Invert(expPDF(1), -1); got != 0 {
			t.Errorf("%s: Invert at t<0 = %v, want 0", inv.Name(), got)
		}
	}
}

func TestMeanFromLST(t *testing.T) {
	cases := []struct {
		f    TransformFunc
		mean float64
	}{
		{expPDF(2), 0.5},
		{gammaPDF(3, 6), 0.5},
		{func(s complex128) complex128 { return cmplx.Exp(-s * 0.25) }, 0.25},
	}
	for i, c := range cases {
		got := MeanFromLST(c.f, 1/c.mean)
		if math.Abs(got-c.mean) > 1e-4*c.mean {
			t.Errorf("case %d: mean = %v, want %v", i, got, c.mean)
		}
	}
}

func TestClamp01(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{-0.5, 0}, {0, 0}, {0.5, 0.5}, {1, 1}, {1.5, 1}, {math.NaN(), 0},
	}
	for _, c := range cases {
		if got := Clamp01(c.in); got != c.want {
			t.Errorf("Clamp01(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestFactorial(t *testing.T) {
	if got := factorial(5); got != 120 {
		t.Errorf("factorial(5) = %v, want 120", got)
	}
	if got := factorial(0); got != 1 {
		t.Errorf("factorial(0) = %v, want 1", got)
	}
}

// TestSharedInverterGoroutineSafety hammers a single shared instance of
// every inverter from many goroutines, including zero-value instances whose
// coefficient tables are initialized lazily through the sync.Once. Run with
// -race this is the regression test for the former lazy-init data race
// (Euler.binom / GaverStehfest.coef were populated inside Invert without
// synchronization).
func TestSharedInverterGoroutineSafety(t *testing.T) {
	shared := []Inverter{
		NewEuler(),
		NewTalbot(),
		NewGaverStehfest(),
		&Euler{A: 18.4, Terms: 15, MTerms: 11}, // lazy init path
		&GaverStehfest{},                       // lazy init + defaulted N
	}
	f := gammaPDF(2.5, 4)
	for _, inv := range shared {
		want := make([]float64, 8)
		for i := range want {
			want[i] = inv.Invert(f, 0.1*float64(i+1))
		}
		var wg sync.WaitGroup
		for g := 0; g < 16; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range want {
					if got := inv.Invert(f, 0.1*float64(i+1)); got != want[i] {
						t.Errorf("%s: concurrent Invert = %v, want %v", inv.Name(), got, want[i])
						return
					}
				}
			}()
		}
		wg.Wait()
	}
}

// TestAppendNodesMatchesInvert asserts the NodeInverter contract: the
// weighted node sum reproduces Invert to within a few ulps (the
// implementations share their arithmetic; only the complex multiply by a
// purely real weight differs).
func TestAppendNodesMatchesInvert(t *testing.T) {
	fs := []TransformFunc{expPDF(2.5), gammaPDF(2.5, 4), gammaPDF(0.8, 10)}
	for _, inv := range inverters() {
		ni, ok := inv.(NodeInverter)
		if !ok {
			t.Fatalf("%s does not implement NodeInverter", inv.Name())
		}
		for _, f := range fs {
			for _, x := range []float64{0.05, 0.3, 1, 4} {
				nodes, weights := ni.AppendNodes(nil, nil, x)
				if len(nodes) == 0 || len(nodes) != len(weights) {
					t.Fatalf("%s: bad node set (%d nodes, %d weights)", inv.Name(), len(nodes), len(weights))
				}
				var sum float64
				for k := range nodes {
					sum += real(weights[k] * f(nodes[k]))
				}
				want := inv.Invert(f, x)
				if math.Abs(sum-want) > 1e-12*(1+math.Abs(want)) {
					t.Errorf("%s: node sum at t=%v = %v, Invert = %v", inv.Name(), x, sum, want)
				}
			}
		}
		if s, w := ni.AppendNodes(nil, nil, 0); len(s) != 0 || len(w) != 0 {
			t.Errorf("%s: AppendNodes at t=0 returned %d nodes", inv.Name(), len(s))
		}
	}
}

func BenchmarkInvertEulerCDF(b *testing.B) {
	inv := NewEuler()
	f := gammaPDF(2.5, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		InvertCDF(inv, f, 0.7)
	}
}

func BenchmarkInvertTalbotCDF(b *testing.B) {
	inv := NewTalbot()
	f := gammaPDF(2.5, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		InvertCDF(inv, f, 0.7)
	}
}

func BenchmarkInvertGaverStehfestCDF(b *testing.B) {
	inv := NewGaverStehfest()
	f := gammaPDF(2.5, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		InvertCDF(inv, f, 0.7)
	}
}
