// Package load is the open-loop client driver for the serving tier: it
// replays a trace.Schedule of arrival rates against a cosserve or cosrouter
// endpoint, posting observation batches (JSON array or streaming NDJSON)
// and predict probes on independent Poisson processes.
//
// Open-loop means arrivals never wait for responses: each arrival either
// claims an in-flight slot or is dropped and counted, so a saturated
// service sees the offered rate — not a rate throttled by its own latency —
// exactly the arrival discipline the paper's percentile claims are stated
// under. Phases labelled "warmup" or "transition" run at full rate but are
// excluded from the measured report.
package load

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cosmodel/internal/ingest"
	"cosmodel/internal/serve"
	"cosmodel/internal/stats"
	"cosmodel/internal/trace"
)

// ErrBadConfig reports an unusable generator configuration.
var ErrBadConfig = errors.New("load: bad config")

// Config describes one open-loop run.
type Config struct {
	// Target is the base URL of the service under test (cosserve or
	// cosrouter — both speak the same /ingest and /predict surface).
	Target string

	// Targets, when non-empty, fans the run out over several base URLs
	// round-robin (arrival i goes to target i mod len(Targets)), so a
	// sharded tier saturates symmetrically instead of hammering one node.
	// Overrides Target. Each target gets its own in-flight slot pool and
	// its own drop accounting: one slow shard exhausts only its own slots
	// and shows up in the per-target report, never throttling (or hiding
	// behind) the healthy ones.
	Targets []string

	// Schedule drives the ingest stream: each phase offers Poisson batch
	// arrivals at Phase.Rate per second for Phase.Duration seconds. Phases
	// labelled "warmup" or "transition" are generated but not measured.
	Schedule trace.Schedule

	// Devices is the deployment size observations are generated for.
	Devices int

	// MakeBatch produces the observations carried by the seq-th ingest
	// arrival. Nil selects SyntheticSource(Devices). Implementations are
	// called from a single goroutine, in arrival order.
	MakeBatch func(seq int) []ingest.Observation

	// Mode selects the ingest wire format: "json" (array envelope) or
	// "ndjson" (streaming). Empty defaults to NDJSON — the batch path.
	Mode string

	// PredictRate adds an independent Poisson stream of /predict probes at
	// this rate for the whole schedule. Zero disables the stream.
	PredictRate float64

	// MaxInflight caps concurrently outstanding requests per target across
	// both streams. An arrival finding no free slot on its target is
	// dropped and counted against that target — the generator never
	// blocks, and a saturated target cannot starve the others' slots.
	// Zero defaults to 256.
	MaxInflight int

	// Seed fixes the arrival processes. Zero means seed 1.
	Seed int64

	// Client overrides the HTTP client (tests, custom timeouts).
	Client *http.Client

	// Logf, when set, receives phase-transition progress lines.
	Logf func(format string, args ...any)
}

func (c *Config) validate() error {
	for _, t := range c.Targets {
		if strings.TrimSpace(t) == "" {
			return fmt.Errorf("%w: empty entry in target list", ErrBadConfig)
		}
	}
	switch {
	case c.Target == "" && len(c.Targets) == 0:
		return fmt.Errorf("%w: empty target", ErrBadConfig)
	case c.Devices <= 0:
		return fmt.Errorf("%w: devices %d", ErrBadConfig, c.Devices)
	case c.Mode != "" && c.Mode != ModeJSON && c.Mode != ModeNDJSON:
		return fmt.Errorf("%w: mode %q (want %q or %q)", ErrBadConfig, c.Mode, ModeJSON, ModeNDJSON)
	case c.PredictRate < 0:
		return fmt.Errorf("%w: predict rate %v", ErrBadConfig, c.PredictRate)
	case c.MaxInflight < 0:
		return fmt.Errorf("%w: max inflight %d", ErrBadConfig, c.MaxInflight)
	}
	return c.Schedule.Validate()
}

// Ingest wire modes.
const (
	ModeJSON   = "json"
	ModeNDJSON = "ndjson"
)

// SyntheticSource returns a batch generator describing a steady storage
// workload: every device reports one interval at rate req/s with fixed
// cache ratios and two latency samples per observation. It is the default
// observation content when the run only cares about ingest throughput.
func SyntheticSource(devices int) func(seq int) []ingest.Observation {
	return func(seq int) []ingest.Observation {
		const interval, rate = 10.0, 50.0
		batch := make([]ingest.Observation, devices)
		for d := range batch {
			reqs := uint64(rate * interval)
			batch[d] = ingest.Observation{
				Device:      d,
				Interval:    interval,
				Requests:    reqs,
				DataReads:   reqs + reqs/5,
				IndexHits:   700,
				IndexMisses: 300,
				MetaHits:    650,
				MetaMisses:  350,
				DataHits:    500,
				DataMisses:  500,
				Latencies:   []float64{0.004, 0.009},
			}
		}
		return batch
	}
}

// StreamReport summarizes one request stream over the measured phases.
type StreamReport struct {
	// Sent counts requests issued, OK the 200 answers, Errors everything
	// else (non-200 status or transport failure). Dropped counts arrivals
	// that found no free in-flight slot — the open-loop overflow.
	Sent    uint64 `json:"sent"`
	OK      uint64 `json:"ok"`
	Errors  uint64 `json:"errors"`
	Dropped uint64 `json:"dropped"`
	// Statuses histograms HTTP status codes (0 = transport error).
	Statuses map[int]uint64 `json:"statuses,omitempty"`
	// Client-observed request latency percentiles, seconds.
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
	Mean float64 `json:"mean"`
	// Rate is the achieved completed-OK rate per measured second.
	Rate float64 `json:"rate"`
}

// PhaseReport is the per-phase arrival accounting (all phases, including
// the unmeasured warmup and transition).
type PhaseReport struct {
	Label      string  `json:"label"`
	TargetRate float64 `json:"targetRate"`
	Duration   float64 `json:"duration"`
	Arrivals   uint64  `json:"arrivals"`
	Dropped    uint64  `json:"dropped"`
}

// TargetReport is one target's slice of a measured run: completed and
// failed requests plus the open-loop drops charged to that target's own
// in-flight slot pool.
type TargetReport struct {
	Target         string `json:"target"`
	IngestOK       uint64 `json:"ingestOK"`
	IngestErrors   uint64 `json:"ingestErrors"`
	IngestDropped  uint64 `json:"ingestDropped"`
	PredictOK      uint64 `json:"predictOK"`
	PredictErrors  uint64 `json:"predictErrors"`
	PredictDropped uint64 `json:"predictDropped"`
}

// Report is the outcome of one run. Stream and throughput numbers cover
// only the benchmark phases; Phases covers everything.
type Report struct {
	Phases []PhaseReport `json:"phases"`
	// MeasuredSeconds is the wall time spent inside benchmark phases.
	MeasuredSeconds float64 `json:"measuredSeconds"`

	Ingest  StreamReport `json:"ingest"`
	Predict StreamReport `json:"predict"`

	// Targets breaks the measured streams down per fan-out target (one
	// entry even in the single-target case, preserving the accounting).
	Targets []TargetReport `json:"targets,omitempty"`

	// Observations counts observations acknowledged by the service during
	// the measured phases (summed from ingest acks — what the server
	// admits, not what the client offered).
	Observations uint64 `json:"observations"`
	// ObsPerSec is the sustained accepted-observation throughput and
	// PredictQPS the completed predict-probe rate, both over the
	// measured window.
	ObsPerSec  float64 `json:"obsPerSec"`
	PredictQPS float64 `json:"predictQPS"`
}

// streamStats accumulates one stream's counters; latencies go to a
// concurrent histogram so request goroutines never serialize on a report
// lock.
type streamStats struct {
	sent, ok, errs, dropped atomic.Uint64
	observations            atomic.Uint64
	lat                     *stats.ConcurrentHistogram
	mu                      sync.Mutex
	statuses                map[int]uint64
}

func newStreamStats() *streamStats {
	return &streamStats{
		lat:      stats.NewConcurrentLatencyHistogram(),
		statuses: make(map[int]uint64),
	}
}

func (s *streamStats) status(code int) {
	s.mu.Lock()
	s.statuses[code]++
	s.mu.Unlock()
}

func (s *streamStats) report(measured float64) StreamReport {
	r := StreamReport{
		Sent:    s.sent.Load(),
		OK:      s.ok.Load(),
		Errors:  s.errs.Load(),
		Dropped: s.dropped.Load(),
	}
	s.mu.Lock()
	if len(s.statuses) > 0 {
		r.Statuses = make(map[int]uint64, len(s.statuses))
		for k, v := range s.statuses {
			r.Statuses[k] = v
		}
	}
	s.mu.Unlock()
	if s.lat.Count() > 0 {
		r.P50 = s.lat.Quantile(0.50)
		r.P90 = s.lat.Quantile(0.90)
		r.P99 = s.lat.Quantile(0.99)
		r.Max = s.lat.Max()
		r.Mean = s.lat.Mean()
	}
	if measured > 0 {
		r.Rate = float64(r.OK) / measured
	}
	return r
}

// targetStats is the per-target accounting of one run: each target owns its
// own counters so a saturated shard is visible instead of averaged away.
type targetStats struct {
	ingestOK, ingestErrs, ingestDropped    atomic.Uint64
	predictOK, predictErrs, predictDropped atomic.Uint64
}

// runner is the shared state of one Run.
type runner struct {
	cfg     Config
	client  *http.Client
	targets []string
	// slots holds one in-flight pool per target: slot exhaustion on one
	// target drops only that target's arrivals.
	slots  []chan struct{}
	tstats []*targetStats
	wg     sync.WaitGroup

	measuring atomic.Bool
	ingest    *streamStats
	predict   *streamStats
}

// Run executes the configured schedule and blocks until every phase has
// elapsed and all in-flight requests finished. ctx cancellation stops the
// run early; the partial report is still returned.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Mode == "" {
		cfg.Mode = ModeNDJSON
	}
	if cfg.MaxInflight == 0 {
		cfg.MaxInflight = 256
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.MakeBatch == nil {
		cfg.MakeBatch = SyntheticSource(cfg.Devices)
	}
	targets := cfg.Targets
	if len(targets) == 0 {
		targets = []string{cfg.Target}
	}
	r := &runner{
		cfg:     cfg,
		client:  cfg.Client,
		targets: targets,
		slots:   make([]chan struct{}, len(targets)),
		tstats:  make([]*targetStats, len(targets)),
		ingest:  newStreamStats(),
		predict: newStreamStats(),
	}
	for i := range targets {
		r.slots[i] = make(chan struct{}, cfg.MaxInflight)
		r.tstats[i] = &targetStats{}
	}
	if r.client == nil {
		r.client = &http.Client{Timeout: 30 * time.Second}
	}

	// The predict stream runs for the whole schedule and stops when the
	// ingest stream (the phase owner) finishes.
	done := make(chan struct{})
	var predictWG sync.WaitGroup
	if cfg.PredictRate > 0 {
		predictWG.Add(1)
		go func() {
			defer predictWG.Done()
			r.predictLoop(ctx, done)
		}()
	}

	report := &Report{}
	measured := r.ingestLoop(ctx, report)
	close(done)
	predictWG.Wait()
	r.wg.Wait() // in-flight requests drain before percentiles are read

	report.MeasuredSeconds = measured
	report.Ingest = r.ingest.report(measured)
	report.Predict = r.predict.report(measured)
	for i, t := range r.targets {
		ts := r.tstats[i]
		report.Targets = append(report.Targets, TargetReport{
			Target:         t,
			IngestOK:       ts.ingestOK.Load(),
			IngestErrors:   ts.ingestErrs.Load(),
			IngestDropped:  ts.ingestDropped.Load(),
			PredictOK:      ts.predictOK.Load(),
			PredictErrors:  ts.predictErrs.Load(),
			PredictDropped: ts.predictDropped.Load(),
		})
	}
	report.Observations = r.ingest.observations.Load()
	if measured > 0 {
		report.ObsPerSec = float64(report.Observations) / measured
		report.PredictQPS = report.Predict.Rate
	}
	if ctx.Err() != nil {
		return report, ctx.Err()
	}
	return report, nil
}

// ingestLoop walks the schedule, emitting Poisson batch arrivals at each
// phase's rate and toggling the measurement flag around benchmark phases.
// Returns the wall seconds spent measuring.
func (r *runner) ingestLoop(ctx context.Context, report *Report) float64 {
	rng := rand.New(rand.NewSource(r.cfg.Seed)) //nolint:gosec // load generation, not crypto
	benchmark := make(map[int]bool)
	for _, i := range r.cfg.Schedule.BenchmarkPhases() {
		benchmark[i] = true
	}
	seq := 0
	var measuredNS int64
	for pi, phase := range r.cfg.Schedule {
		pr := PhaseReport{Label: phase.Label, TargetRate: phase.Rate, Duration: phase.Duration}
		r.measuring.Store(benchmark[pi])
		if r.cfg.Logf != nil {
			r.cfg.Logf("load: phase %d %q rate %.1f/s for %.2fs (measured=%v)",
				pi, phase.Label, phase.Rate, phase.Duration, benchmark[pi])
		}
		start := time.Now()
		deadline := start.Add(time.Duration(phase.Duration * float64(time.Second)))
		for {
			wait := time.Duration(rng.ExpFloat64() / phase.Rate * float64(time.Second))
			next := time.Now().Add(wait)
			if next.After(deadline) {
				sleepUntil(ctx, deadline)
				break
			}
			sleepUntil(ctx, next)
			if ctx.Err() != nil {
				break
			}
			pr.Arrivals++
			batch := r.cfg.MakeBatch(seq)
			ti := seq % len(r.targets)
			seq++
			if !r.launch(ti, func(measured bool) { r.postIngest(ctx, ti, batch, measured) },
				r.ingest, &r.tstats[ti].ingestDropped) {
				pr.Dropped++
			}
		}
		if benchmark[pi] {
			measuredNS += int64(time.Since(start))
		}
		report.Phases = append(report.Phases, pr)
		if ctx.Err() != nil {
			r.measuring.Store(false)
			break
		}
	}
	r.measuring.Store(false)
	return time.Duration(measuredNS).Seconds()
}

// predictLoop issues the constant-rate probe stream until done closes,
// round-robining probes over the fan-out targets on its own counter.
func (r *runner) predictLoop(ctx context.Context, done <-chan struct{}) {
	rng := rand.New(rand.NewSource(r.cfg.Seed + 1)) //nolint:gosec // load generation
	seq := 0
	for {
		wait := time.Duration(rng.ExpFloat64() / r.cfg.PredictRate * float64(time.Second))
		t := time.NewTimer(wait)
		select {
		case <-done:
			t.Stop()
			return
		case <-ctx.Done():
			t.Stop()
			return
		case <-t.C:
		}
		ti := seq % len(r.targets)
		seq++
		r.launch(ti, func(measured bool) { r.getPredict(ctx, ti, measured) },
			r.predict, &r.tstats[ti].predictDropped)
	}
}

// launch claims an in-flight slot on target ti and runs fn on its own
// goroutine. A full slot pool means the arrival is dropped (counted when
// measuring, against both the stream and the target) — the open-loop
// contract. Reports whether the request was launched.
func (r *runner) launch(ti int, fn func(measured bool), st *streamStats, targetDropped *atomic.Uint64) bool {
	measured := r.measuring.Load()
	select {
	case r.slots[ti] <- struct{}{}:
	default:
		if measured {
			st.dropped.Add(1)
			targetDropped.Add(1)
		}
		return false
	}
	if measured {
		st.sent.Add(1)
	}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		defer func() { <-r.slots[ti] }()
		fn(measured)
	}()
	return true
}

func (r *runner) postIngest(ctx context.Context, ti int, batch []ingest.Observation, measured bool) {
	ts := r.tstats[ti]
	var body bytes.Buffer
	contentType := ingest.ContentTypeJSON
	if r.cfg.Mode == ModeNDJSON {
		contentType = ingest.ContentTypeNDJSON
		if err := ingest.EncodeNDJSON(&body, batch); err != nil {
			r.fail(r.ingest, &ts.ingestErrs, measured, 0)
			return
		}
	} else if err := json.NewEncoder(&body).Encode(serve.IngestRequest{Observations: batch}); err != nil {
		r.fail(r.ingest, &ts.ingestErrs, measured, 0)
		return
	}
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.targets[ti]+"/ingest", &body)
	if err != nil {
		r.fail(r.ingest, &ts.ingestErrs, measured, 0)
		return
	}
	req.Header.Set("Content-Type", contentType)
	resp, err := r.client.Do(req)
	if err != nil {
		r.fail(r.ingest, &ts.ingestErrs, measured, 0)
		return
	}
	defer resp.Body.Close()
	var ack serve.IngestResponse
	decodeErr := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&ack)
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for connection reuse
	if !measured {
		return
	}
	r.ingest.status(resp.StatusCode)
	if resp.StatusCode != http.StatusOK || decodeErr != nil {
		r.ingest.errs.Add(1)
		ts.ingestErrs.Add(1)
		return
	}
	r.ingest.ok.Add(1)
	ts.ingestOK.Add(1)
	r.ingest.observations.Add(uint64(ack.Accepted))
	r.ingest.lat.Observe(time.Since(start).Seconds())
}

func (r *runner) getPredict(ctx context.Context, ti int, measured bool) {
	ts := r.tstats[ti]
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.targets[ti]+"/predict", nil)
	if err != nil {
		r.fail(r.predict, &ts.predictErrs, measured, 0)
		return
	}
	resp, err := r.client.Do(req)
	if err != nil {
		r.fail(r.predict, &ts.predictErrs, measured, 0)
		return
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for connection reuse
	resp.Body.Close()
	if !measured {
		return
	}
	r.predict.status(resp.StatusCode)
	if resp.StatusCode != http.StatusOK {
		r.predict.errs.Add(1)
		ts.predictErrs.Add(1)
		return
	}
	r.predict.ok.Add(1)
	ts.predictOK.Add(1)
	r.predict.lat.Observe(time.Since(start).Seconds())
}

// fail records a transport-level failure (status 0) on a measured request,
// charging both the stream and the target it was bound for.
func (r *runner) fail(st *streamStats, targetErrs *atomic.Uint64, measured bool, code int) {
	if !measured {
		return
	}
	st.status(code)
	st.errs.Add(1)
	targetErrs.Add(1)
}

// sleepUntil sleeps until t or ctx cancellation, whichever first.
func sleepUntil(ctx context.Context, t time.Time) {
	d := time.Until(t)
	if d <= 0 {
		return
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-ctx.Done():
	}
}

// Render writes the human-readable run summary.
func (rep *Report) Render(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "phases (measured window %.2fs):\n", rep.MeasuredSeconds)
	for _, p := range rep.Phases {
		fmt.Fprintf(&b, "  %-14s target %8.1f/s  %6.2fs  arrivals %6d  dropped %d\n",
			p.Label, p.TargetRate, p.Duration, p.Arrivals, p.Dropped)
	}
	stream := func(name string, s StreamReport) {
		fmt.Fprintf(&b, "%s: sent %d ok %d errors %d dropped %d", name, s.Sent, s.OK, s.Errors, s.Dropped)
		if s.OK > 0 {
			fmt.Fprintf(&b, "  p50 %.1fms p90 %.1fms p99 %.1fms max %.1fms",
				s.P50*1e3, s.P90*1e3, s.P99*1e3, s.Max*1e3)
		}
		fmt.Fprintln(&b)
	}
	stream("ingest ", rep.Ingest)
	stream("predict", rep.Predict)
	if len(rep.Targets) > 1 {
		for _, t := range rep.Targets {
			fmt.Fprintf(&b, "  %-28s ingest ok %d err %d drop %d  predict ok %d err %d drop %d\n",
				t.Target, t.IngestOK, t.IngestErrors, t.IngestDropped,
				t.PredictOK, t.PredictErrors, t.PredictDropped)
		}
	}
	fmt.Fprintf(&b, "sustained: %.0f obs/s accepted, %.1f predict QPS\n",
		rep.ObsPerSec, rep.PredictQPS)
	_, err := io.WriteString(w, b.String())
	return err
}
