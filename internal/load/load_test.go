package load

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cosmodel/internal/core"
	"cosmodel/internal/dist"
	"cosmodel/internal/serve"
	"cosmodel/internal/trace"
)

func testProps() core.DeviceProperties {
	return core.DeviceProperties{
		IndexDisk: dist.NewGammaMeanSCV(9e-3, 0.45),
		MetaDisk:  dist.NewGammaMeanSCV(6e-3, 0.50),
		DataDisk:  dist.NewGammaMeanSCV(8e-3, 0.40),
		ParseFE:   dist.Degenerate{Value: 300e-6},
		ParseBE:   dist.Degenerate{Value: 500e-6},
	}
}

func testServer(t *testing.T, devices int) *httptest.Server {
	t.Helper()
	cfg := serve.DefaultConfig(testProps(), devices)
	srv, err := serve.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestConfigValidate pins the rejection matrix.
func TestConfigValidate(t *testing.T) {
	good := Config{
		Target:   "http://x",
		Devices:  2,
		Schedule: trace.Schedule{{Rate: 10, Duration: 1, Label: "rate=10"}},
	}
	if err := good.validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	for name, mutate := range map[string]func(*Config){
		"no target":         func(c *Config) { c.Target = "" },
		"blank target list": func(c *Config) { c.Targets = []string{"http://a", " "} },
		"no devices":        func(c *Config) { c.Devices = 0 },
		"bad mode":          func(c *Config) { c.Mode = "xml" },
		"neg predict":       func(c *Config) { c.PredictRate = -1 },
		"neg inflight":      func(c *Config) { c.MaxInflight = -1 },
		"empty schedule":    func(c *Config) { c.Schedule = nil },
	} {
		c := good
		mutate(&c)
		if err := c.validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestRunAgainstServe drives a real in-process serving instance with both
// streams and cross-checks the client-side accounting against the engine:
// every observation the client counted as accepted must be in the state
// table — the zero-silent-drops contract, end to end.
func TestRunAgainstServe(t *testing.T) {
	const devices = 3
	cfg := serve.DefaultConfig(testProps(), devices)
	srv, err := serve.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, mode := range []string{ModeJSON, ModeNDJSON} {
		t.Run(mode, func(t *testing.T) {
			before := srv.Engine().Stats().Ingested
			rep, err := Run(context.Background(), Config{
				Target:  ts.URL,
				Devices: devices,
				Mode:    mode,
				Schedule: trace.Schedule{
					{Rate: 300, Duration: 0.1, Label: "warmup"},
					{Rate: 300, Duration: 0.4, Label: "rate=300"},
				},
				PredictRate: 100,
				Seed:        7,
				Logf:        t.Logf,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Ingest.OK == 0 {
				t.Fatalf("no successful ingests: %+v", rep.Ingest)
			}
			if rep.Ingest.Errors != 0 || rep.Ingest.Dropped != 0 {
				t.Fatalf("lossless run saw errors/drops: %+v", rep.Ingest)
			}
			if rep.Predict.OK == 0 {
				t.Fatalf("no successful predicts: %+v", rep.Predict)
			}
			if rep.Observations != rep.Ingest.OK*uint64(devices) {
				t.Fatalf("observations %d, want %d acks x %d devices",
					rep.Observations, rep.Ingest.OK, devices)
			}
			// Measured-window accepted counts are a lower bound on the
			// engine's total (warmup batches land too, uncounted).
			delta := srv.Engine().Stats().Ingested - before
			if delta < rep.Observations {
				t.Fatalf("engine absorbed %d, client counted %d accepted", delta, rep.Observations)
			}
			if rep.ObsPerSec <= 0 || rep.PredictQPS <= 0 {
				t.Fatalf("throughput not reported: %+v", rep)
			}
			if rep.Ingest.P99 < rep.Ingest.P50 {
				t.Fatalf("percentiles inverted: %+v", rep.Ingest)
			}
			if rep.MeasuredSeconds < 0.35 || rep.MeasuredSeconds > 2 {
				t.Fatalf("measured window %.3fs, want ~0.4s", rep.MeasuredSeconds)
			}
			var arrivals uint64
			for _, p := range rep.Phases {
				if strings.HasPrefix(p.Label, "rate=") {
					arrivals += p.Arrivals
				}
			}
			if arrivals != rep.Ingest.Sent+rep.Ingest.Dropped {
				t.Fatalf("arrival accounting: %d arrivals vs %d sent + %d dropped",
					arrivals, rep.Ingest.Sent, rep.Ingest.Dropped)
			}
		})
	}
}

// TestOpenLoopDrops pins the open-loop contract: with one in-flight slot
// and a slow server, arrivals overflow and are counted, never blocked on.
func TestOpenLoopDrops(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(50 * time.Millisecond)
		w.Write([]byte(`{"accepted":1}`)) //nolint:errcheck
	}))
	defer slow.Close()

	start := time.Now()
	rep, err := Run(context.Background(), Config{
		Target:      slow.URL,
		Devices:     1,
		MaxInflight: 1,
		Schedule:    trace.Schedule{{Rate: 400, Duration: 0.25, Label: "rate=400"}},
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ingest.Dropped == 0 {
		t.Fatalf("saturated run dropped nothing: %+v", rep.Ingest)
	}
	if rep.Ingest.Sent+rep.Ingest.Dropped < 50 {
		t.Fatalf("offered load collapsed — closed-loop behavior? %+v", rep.Ingest)
	}
	// Open-loop: the schedule finishes on time (plus request drain), not
	// stretched by the server's latency.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("run took %v; generator blocked on the slow server", elapsed)
	}
}

// TestMultiTargetFanOut pins the round-robin fan-out contract: arrivals
// alternate over the target list, each target has its own in-flight slot
// pool, and a saturated target's drops are charged to it alone — the
// healthy target keeps its full share of the offered load.
func TestMultiTargetFanOut(t *testing.T) {
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"accepted":1}`)) //nolint:errcheck
	}))
	defer fast.Close()
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(50 * time.Millisecond)
		w.Write([]byte(`{"accepted":1}`)) //nolint:errcheck
	}))
	defer slow.Close()

	rep, err := Run(context.Background(), Config{
		Targets:     []string{fast.URL, slow.URL},
		Devices:     1,
		MaxInflight: 1,
		Schedule:    trace.Schedule{{Rate: 400, Duration: 0.25, Label: "rate=400"}},
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Targets) != 2 {
		t.Fatalf("want 2 target reports, got %+v", rep.Targets)
	}
	ft, st := rep.Targets[0], rep.Targets[1]
	if ft.Target != fast.URL || st.Target != slow.URL {
		t.Fatalf("target order not preserved: %+v", rep.Targets)
	}
	if ft.IngestOK == 0 || st.IngestOK == 0 {
		t.Fatalf("round-robin starved a target: fast %+v slow %+v", ft, st)
	}
	// The slow shard must drop heavily (1 slot, 50ms service, ~200/s
	// offered) while the fast one sees at most transient overlap — its slot
	// pool is independent, so the saturation cannot spill over.
	if st.IngestDropped < 10 {
		t.Fatalf("saturated target dropped almost nothing: %+v", st)
	}
	if ft.IngestDropped*5 >= st.IngestDropped {
		t.Fatalf("drops not isolated to the slow target: fast %+v slow %+v", ft, st)
	}
	// Per-target accounting must tile the stream totals exactly.
	if got := ft.IngestOK + st.IngestOK; got != rep.Ingest.OK {
		t.Fatalf("per-target OK %d != stream OK %d", got, rep.Ingest.OK)
	}
	if got := ft.IngestDropped + st.IngestDropped; got != rep.Ingest.Dropped {
		t.Fatalf("per-target dropped %d != stream dropped %d", got, rep.Ingest.Dropped)
	}
	if got := ft.IngestErrors + st.IngestErrors; got != rep.Ingest.Errors {
		t.Fatalf("per-target errors %d != stream errors %d", got, rep.Ingest.Errors)
	}

	var b strings.Builder
	if err := rep.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), slow.URL) {
		t.Fatalf("multi-target summary missing per-target lines:\n%s", b.String())
	}
}

// TestRunContextCancel returns the partial report promptly.
func TestRunContextCancel(t *testing.T) {
	ts := testServer(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	rep, err := Run(ctx, Config{
		Target:   ts.URL,
		Devices:  2,
		Schedule: trace.Schedule{{Rate: 50, Duration: 30, Label: "rate=50"}},
	})
	if err == nil {
		t.Fatal("cancelled run reported no error")
	}
	if rep == nil {
		t.Fatal("cancelled run returned no partial report")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

// TestRenderReport smoke-tests the human summary.
func TestRenderReport(t *testing.T) {
	ts := testServer(t, 2)
	rep, err := Run(context.Background(), Config{
		Target:      ts.URL,
		Devices:     2,
		Schedule:    trace.Schedule{{Rate: 100, Duration: 0.2, Label: "rate=100"}},
		PredictRate: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := rep.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"rate=100", "ingest", "predict", "obs/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}
