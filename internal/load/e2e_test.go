package load_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"cosmodel/internal/experiments"
	"cosmodel/internal/ingest"
	"cosmodel/internal/load"
	"cosmodel/internal/serve"
	"cosmodel/internal/simstore"
	"cosmodel/internal/trace"
)

// TestClosedLoopSaturationE2E is the macro end-to-end: traffic measured from
// the discrete-event simulator is replayed through the open-loop generator
// over the streaming NDJSON ingest path (with a concurrent predict-probe
// stream), and three claims are checked at once:
//
//  1. Accuracy under load: /predict answers track the simulator-observed
//     SLA-meeting fractions at MAE <= 0.10 — the paper's Table I band —
//     while the service is fed by the generator, not by hand.
//  2. Admission holds the observed p99: for every analyzed step, /advise at
//     (sla = simulator-observed p99, target = 0.99) must admit the rate the
//     simulator demonstrably sustained at that percentile.
//  3. Zero silent drops: every observation the client counted as accepted
//     is in the engine's state table, and nothing overflowed the open-loop
//     slots or the calibration hand-off ring.
func TestClosedLoopSaturationE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator-driven macro e2e")
	}
	sc := experiments.DefaultS1()
	sc.CatalogObjects = 60000
	sc.WarmRate, sc.WarmDur = 100, 20
	sc.RateStart, sc.RateEnd, sc.RateStep = 60, 240, 60
	sc.StepDur, sc.StepDiscard = 10, 3
	sc.CalibrationOps = 1500
	data, err := experiments.RunSweep(sc)
	if err != nil {
		t.Fatal(err)
	}

	measured := sc.StepDur - sc.StepDiscard
	cfg := serve.DefaultConfig(data.Props, sc.Sim.Devices())
	cfg.ProcsPerDevice = sc.Sim.ProcsPerDisk
	cfg.FrontendProcs = sc.Sim.Frontends * sc.Sim.ProcsPerFrontend
	cfg.SLAs = sc.Sim.SLAs
	cfg.Window = measured
	srv, err := serve.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var absErr []float64
	var accepted uint64
	adviseChecked := 0
	for step, win := range data.Windows {
		if win.Timeouts > 0 || win.Retries > 0 || win.Responses == 0 {
			continue // same exclusions as the paper's analysis
		}
		batch := windowToObservations(win)
		if len(batch) == 0 {
			continue
		}
		// Replay this step's window through the generator: a short
		// benchmark-only schedule (every arrival measured), the batch
		// repeated at a steady rate — re-reporting an interval keeps the
		// sliding window at the same operating point.
		rep, err := load.Run(context.Background(), load.Config{
			Target:    ts.URL,
			Devices:   sc.Sim.Devices(),
			Mode:      load.ModeNDJSON,
			MakeBatch: func(int) []ingest.Observation { return batch },
			Schedule: trace.Schedule{
				{Rate: 60, Duration: 0.4, Label: fmt.Sprintf("rate=%g", data.Rates[step])},
			},
			// Probe /predict only after the first batch landed (step > 0
			// means the window is already populated from the prior step).
			PredictRate: 50 * float64(min(step, 1)),
			MaxInflight: 512,
			Seed:        int64(step + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Ingest.Errors != 0 || rep.Ingest.Dropped != 0 {
			t.Fatalf("step %d: generator lost traffic: %+v", step, rep.Ingest)
		}
		if rep.Predict.Errors != 0 {
			t.Fatalf("step %d: predict probes failed: %+v", step, rep.Predict)
		}
		if rep.ObsPerSec <= 0 {
			t.Fatalf("step %d: no sustained ingest: %+v", step, rep)
		}
		accepted += rep.Observations

		pr := predictHTTP(t, ts.URL)
		if pr.Saturated {
			t.Errorf("rate %.0f predicted saturated; simulator completed the window fine", data.Rates[step])
			continue
		}
		for i, p := range pr.Predictions {
			e := p.MeetRatio - win.MeetFraction[i]
			absErr = append(absErr, math.Abs(e))
			t.Logf("rate %.0f sla %.3f: predicted %.4f observed %.4f (err %+.4f)",
				data.Rates[step], p.SLA, p.MeetRatio, win.MeetFraction[i], e)
		}

		// Admission control must hold the percentile the simulator
		// observed: at SLA = observed p99 and target 99%, the advised
		// max admissible rate has to cover the rate that demonstrably
		// met it (modulo model error — allow 25% slack).
		if win.Latency == nil {
			continue
		}
		p99 := win.Latency.Quantile(0.99)
		if !(p99 > 0) || math.IsInf(p99, 0) {
			continue
		}
		var adv serve.Advice
		getInto(t, fmt.Sprintf("%s/advise?sla=%g&target=0.99", ts.URL, p99), &adv)
		if math.Abs(adv.Headroom-(adv.MaxAdmissibleRate-adv.CurrentRate)) > 1e-9 {
			t.Errorf("rate %.0f: inconsistent headroom: %+v", data.Rates[step], adv)
		}
		if adv.MaxAdmissibleRate < 0.75*data.Rates[step] {
			t.Errorf("rate %.0f: admission bound %.1f req/s refuses a rate the simulator held p99=%.3fs at",
				data.Rates[step], adv.MaxAdmissibleRate, p99)
		}
		adviseChecked++
	}
	if len(absErr) < 6 {
		t.Fatalf("only %d comparable predictions; sweep degenerated", len(absErr))
	}
	if adviseChecked == 0 {
		t.Fatal("no step produced an observed p99 to check admission against")
	}
	var sum float64
	for _, e := range absErr {
		sum += e
	}
	mae := sum / float64(len(absErr))
	t.Logf("MAE %.4f over %d (step, SLA) pairs; admission checked at %d steps", mae, len(absErr), adviseChecked)
	if mae > 0.10 {
		t.Errorf("MAE %.4f exceeds 0.10", mae)
	}

	// Zero silent drops, end to end: the engine holds exactly what the
	// client counted as accepted, and the calibration hand-off dropped
	// nothing (there is no calibrator, so its counter must stay zero).
	st := srv.Engine().Stats()
	if st.Ingested != accepted {
		t.Errorf("engine ingested %d, client counted %d accepted", st.Ingested, accepted)
	}
	if st.CalibQueueDropped != 0 {
		t.Errorf("calibration ring dropped %d observations", st.CalibQueueDropped)
	}
}

// windowToObservations converts a simulator measurement window into the wire
// observations a monitoring agent would report (the serve e2e uses the same
// conversion). Ratios become synthetic hit/miss counts over a fixed number
// of accesses.
func windowToObservations(win simstore.Window) []ingest.Observation {
	const accesses = 1_000_000
	var out []ingest.Observation
	for d := range win.DeviceRate {
		if win.DeviceRate[d] <= 0 {
			continue
		}
		hits := func(miss float64) (uint64, uint64) {
			m := uint64(math.Round(miss * accesses))
			return accesses - m, m
		}
		o := ingest.Observation{
			Device:    d,
			Interval:  win.Duration,
			Requests:  uint64(math.Round(win.DeviceRate[d] * win.Duration)),
			DataReads: uint64(math.Round(win.DeviceChunkRate[d] * win.Duration)),
			DiskBusy:  win.DiskMeanSvc[d] * accesses,
			DiskOps:   accesses,
		}
		o.IndexHits, o.IndexMisses = hits(win.MissIndex[d])
		o.MetaHits, o.MetaMisses = hits(win.MissMeta[d])
		o.DataHits, o.DataMisses = hits(win.MissData[d])
		out = append(out, o)
	}
	return out
}

func predictHTTP(t *testing.T, base string) serve.PredictResponse {
	t.Helper()
	var pr serve.PredictResponse
	getInto(t, base+"/predict", &pr)
	return pr
}

func getInto(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, v); err != nil {
		t.Fatalf("unmarshal %q: %v", data, err)
	}
}
