// Package obs is the prediction service's zero-dependency observability
// layer: a metrics registry of counters, gauges and log-bucketed latency
// histograms (reusing the stats package's HDR-style histogram) with
// Prometheus text-format exposition.
//
// The paper's whole subject is latency percentiles, so the predictor that
// serves them must be measurable the same way it models the storage backend:
// the registry carries the server's own per-endpoint latency distributions
// (self-measured p50/p95/p99 next to the model's predicted percentiles),
// span-style evaluation metrics from the model engine (inversion node
// counts, wall time), worker-pool utilization, cache effectiveness and
// calibration state transitions.
//
// Metrics are identified by name plus an optional set of constant labels
// fixed at registration. Registration is get-or-create: asking for the same
// (name, labels) pair returns the existing metric, so independent components
// can share a registry without coordination. Metric names and label names
// must match Prometheus conventions ([a-zA-Z_:][a-zA-Z0-9_:]*); violations
// panic at registration time — they are programmer errors, never data-path
// errors.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"cosmodel/internal/stats"
)

// Labels are constant key/value pairs attached to a metric at registration.
type Labels map[string]string

// metricKind is the Prometheus type of a metric family.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindSummary
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindSummary:
		return "summary"
	}
	return "untyped"
}

// Counter is a monotonically increasing counter. Safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable float64 value. Safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a concurrency-safe log-bucketed latency histogram exposed in
// Prometheus text format as a summary: the configured quantiles plus _sum
// and _count. Quantile values are bucket upper bounds, so their relative
// error is bounded by the underlying histogram's growth factor (5% for the
// standard latency layout).
type Histogram struct {
	h         *stats.ConcurrentHistogram
	quantiles []float64
}

// Observe records one value. Non-finite or negative values are dropped by
// the underlying histogram (see stats.Histogram.Observe) and surface in
// Dropped, never in the quantiles.
func (h *Histogram) Observe(v float64) { h.h.Observe(v) }

// Count returns the number of (accepted) observations.
func (h *Histogram) Count() uint64 { return h.h.Count() }

// Dropped returns the number of rejected (NaN, infinite, negative)
// observations.
func (h *Histogram) Dropped() uint64 { return h.h.Dropped() }

// Quantile returns an upper bound of the q-quantile (0 when empty).
func (h *Histogram) Quantile(q float64) float64 { return h.h.Quantile(q) }

// Mean returns the mean of the accepted observations (0 when empty).
func (h *Histogram) Mean() float64 { return h.h.Mean() }

// Snapshot returns a point-in-time copy of the underlying histogram.
func (h *Histogram) Snapshot() *stats.Histogram { return h.h.Snapshot() }

// DefaultQuantiles are the summary quantiles exposed when none are given:
// the median and the two tail percentiles the paper's SLA analysis lives on.
var DefaultQuantiles = []float64{0.5, 0.95, 0.99}

// metric is one registered time series within a family.
type metric struct {
	labels    Labels
	labelKey  string // canonical serialized labels, for dedup and ordering
	counter   *Counter
	gauge     *Gauge
	gaugeFn   func() float64
	histogram *Histogram
}

// family groups all metrics sharing one name (and therefore one type).
type family struct {
	name    string
	help    string
	kind    metricKind
	order   []string // label keys in registration order
	metrics map[string]*metric
}

// Registry holds named metrics and renders them in Prometheus text format.
// The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	names    []string // registration order of family names
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter returns the counter registered under (name, labels), creating it
// on first use. It panics when name is invalid or already registered with a
// different type.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	m := r.getOrCreate(name, help, kindCounter, labels, func() *metric {
		return &metric{counter: &Counter{}}
	})
	return m.counter
}

// Gauge returns the gauge registered under (name, labels), creating it on
// first use.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	m := r.getOrCreate(name, help, kindGauge, labels, func() *metric {
		return &metric{gauge: &Gauge{}}
	})
	return m.gauge
}

// GaugeFunc registers a gauge whose value is computed by fn at exposition
// time (scrape-time collection for values already tracked elsewhere, e.g.
// pool utilization or cache occupancy). Re-registering the same (name,
// labels) replaces the callback.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	m := r.getOrCreate(name, help, kindGauge, labels, func() *metric {
		return &metric{}
	})
	r.mu.Lock()
	m.gaugeFn = fn
	r.mu.Unlock()
}

// Histogram returns the summary-exposed histogram registered under (name,
// labels), creating it on first use with the standard latency layout
// (1 µs – 1000 s, 5% resolution) and DefaultQuantiles.
func (r *Registry) Histogram(name, help string, labels Labels) *Histogram {
	m := r.getOrCreate(name, help, kindSummary, labels, func() *metric {
		return &metric{histogram: &Histogram{
			h:         stats.NewConcurrentLatencyHistogram(),
			quantiles: DefaultQuantiles,
		}}
	})
	return m.histogram
}

// getOrCreate implements the registration path shared by every metric type.
func (r *Registry) getOrCreate(name, help string, kind metricKind, labels Labels, build func() *metric) *metric {
	mustValidName(name)
	for k := range labels {
		mustValidName(k)
	}
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, metrics: make(map[string]*metric)}
		r.families[name] = f
		r.names = append(r.names, name)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	m, ok := f.metrics[key]
	if !ok {
		m = build()
		m.labels = cloneLabels(labels)
		m.labelKey = key
		f.metrics[key] = m
		f.order = append(f.order, key)
	}
	return m
}

// mustValidName panics unless s is a valid Prometheus metric or label name.
func mustValidName(s string) {
	if !validName(s) {
		panic(fmt.Sprintf("obs: invalid metric or label name %q", s))
	}
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func cloneLabels(l Labels) Labels {
	if len(l) == 0 {
		return nil
	}
	out := make(Labels, len(l))
	for k, v := range l {
		out[k] = v
	}
	return out
}

// labelKey serializes labels canonically (sorted by key).
func labelKey(l Labels) string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(escapeLabelValue(l[k]))
	}
	return b.String()
}

// escapeLabelValue escapes a label value per the Prometheus text format:
// backslash, double quote and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}
