// Package promtest is a test helper that validates Prometheus text
// exposition format (version 0.0.4) output without importing the Prometheus
// client libraries. It enforces the structural rules a real scraper relies
// on: comment syntax, metric and label name grammar, label-value escaping,
// parseable sample values, at most one TYPE line per family declared before
// that family's samples, and family contiguity (a family's samples never
// resume after another family has started).
package promtest

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
)

// validTypes are the metric types the text format admits.
var validTypes = map[string]bool{
	"counter": true, "gauge": true, "summary": true,
	"histogram": true, "untyped": true,
}

// Parse validates text as Prometheus exposition format and returns every
// sample keyed exactly as rendered (name plus the {label="value"} block, if
// any). Duplicate sample keys, malformed lines and ordering violations are
// errors.
func Parse(text string) (map[string]float64, error) {
	samples := make(map[string]float64)
	types := make(map[string]string) // family -> declared type
	closed := make(map[string]bool)  // families whose sample block ended
	current := ""                    // family currently emitting samples
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		l := sc.Text()
		switch {
		case l == "":
			continue
		case strings.HasPrefix(l, "# HELP "):
			rest := strings.TrimPrefix(l, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || !validName(name) {
				return nil, fmt.Errorf("line %d: malformed HELP: %q", line, l)
			}
		case strings.HasPrefix(l, "# TYPE "):
			rest := strings.TrimPrefix(l, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || !validName(name) || !validTypes[typ] {
				return nil, fmt.Errorf("line %d: malformed TYPE: %q", line, l)
			}
			if _, dup := types[name]; dup {
				return nil, fmt.Errorf("line %d: duplicate TYPE for %q", line, name)
			}
			types[name] = typ
		case strings.HasPrefix(l, "#"):
			continue // other comments are legal and skipped
		default:
			key, value, err := parseSample(l)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", line, err)
			}
			name := key
			if i := strings.IndexByte(key, '{'); i >= 0 {
				name = key[:i]
			}
			fam := familyOf(name, types)
			if fam != current {
				if current != "" {
					closed[current] = true
				}
				if closed[fam] {
					return nil, fmt.Errorf("line %d: family %q resumes after another family's samples", line, fam)
				}
				current = fam
			}
			if _, dup := samples[key]; dup {
				return nil, fmt.Errorf("line %d: duplicate sample %q", line, key)
			}
			samples[key] = value
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return samples, nil
}

// familyOf resolves a sample name to its metric family, folding the _sum and
// _count series of a declared summary or histogram into the base family.
func familyOf(name string, types map[string]string) string {
	for _, suffix := range []string{"_sum", "_count", "_bucket"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name && (types[base] == "summary" || types[base] == "histogram") {
			return base
		}
	}
	return name
}

// parseSample splits one sample line into its series key (name plus label
// block) and value, validating the grammar along the way.
func parseSample(l string) (key string, value float64, err error) {
	rest := l
	name := rest
	if i := strings.IndexAny(rest, "{ "); i >= 0 {
		name = rest[:i]
	}
	if !validName(name) {
		return "", 0, fmt.Errorf("invalid metric name in %q", l)
	}
	rest = rest[len(name):]
	labels := ""
	if strings.HasPrefix(rest, "{") {
		end := labelBlockEnd(rest)
		if end < 0 {
			return "", 0, fmt.Errorf("unterminated label block in %q", l)
		}
		labels = rest[:end+1]
		if err := validateLabels(labels); err != nil {
			return "", 0, fmt.Errorf("%v in %q", err, l)
		}
		rest = rest[end+1:]
	}
	rest = strings.TrimPrefix(rest, " ")
	// An optional timestamp may follow the value.
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", 0, fmt.Errorf("expected value (and optional timestamp) in %q", l)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", 0, fmt.Errorf("unparseable value %q", fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", 0, fmt.Errorf("unparseable timestamp %q", fields[1])
		}
	}
	return name + labels, v, nil
}

// labelBlockEnd returns the index of the closing brace of the label block at
// the start of s, honouring escaped characters inside quoted values.
func labelBlockEnd(s string) int {
	inQuotes := false
	for i := 1; i < len(s); i++ {
		switch {
		case inQuotes && s[i] == '\\':
			i++ // skip the escaped character
		case s[i] == '"':
			inQuotes = !inQuotes
		case !inQuotes && s[i] == '}':
			return i
		}
	}
	return -1
}

// validateLabels checks a {name="value",...} block: label-name grammar,
// quoted values, and legal escapes (\\, \", \n) only.
func validateLabels(block string) error {
	inner := strings.TrimSuffix(strings.TrimPrefix(block, "{"), "}")
	if inner == "" {
		return nil
	}
	for len(inner) > 0 {
		eq := strings.IndexByte(inner, '=')
		if eq < 0 {
			return fmt.Errorf("label without '=' near %q", inner)
		}
		lname := inner[:eq]
		if !validName(lname) {
			return fmt.Errorf("invalid label name %q", lname)
		}
		inner = inner[eq+1:]
		if !strings.HasPrefix(inner, `"`) {
			return fmt.Errorf("unquoted label value near %q", inner)
		}
		end := -1
		for i := 1; i < len(inner); i++ {
			if inner[i] == '\\' {
				if i+1 >= len(inner) || !strings.ContainsRune(`\"n`, rune(inner[i+1])) {
					return fmt.Errorf("illegal escape in label value near %q", inner)
				}
				i++
				continue
			}
			if inner[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return fmt.Errorf("unterminated label value near %q", inner)
		}
		inner = inner[end+1:]
		if inner == "" {
			break
		}
		if !strings.HasPrefix(inner, ",") {
			return fmt.Errorf("missing ',' between labels near %q", inner)
		}
		inner = inner[1:]
	}
	return nil
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
