package obs

import (
	"math"
	"strings"
	"sync"
	"testing"

	"cosmodel/internal/obs/promtest"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "Requests.", nil)
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Errorf("counter = %d, want 3", c.Value())
	}
	g := r.Gauge("queue_depth", "Depth.", nil)
	g.Set(4.5)
	if g.Value() != 4.5 {
		t.Errorf("gauge = %v, want 4.5", g.Value())
	}
	g.Set(-1)
	if g.Value() != -1 {
		t.Errorf("gauge = %v, want -1", g.Value())
	}
}

func TestGetOrCreateIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("hits_total", "Hits.", Labels{"class": "data"})
	b := r.Counter("hits_total", "Hits.", Labels{"class": "data"})
	if a != b {
		t.Error("same (name, labels) must return the same counter")
	}
	c := r.Counter("hits_total", "Hits.", Labels{"class": "meta"})
	if a == c {
		t.Error("different labels must return distinct counters")
	}
	a.Inc()
	if b.Value() != 1 || c.Value() != 0 {
		t.Errorf("values = %d, %d", b.Value(), c.Value())
	}
}

func TestRegistrationPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	mustPanic("invalid metric name", func() { r.Counter("bad-name", "", nil) })
	mustPanic("leading digit", func() { r.Counter("9lives", "", nil) })
	mustPanic("invalid label name", func() { r.Gauge("ok_name", "", Labels{"bad-label": "x"}) })
	r.Counter("dual_use", "", nil)
	mustPanic("kind mismatch", func() { r.Gauge("dual_use", "", nil) })
}

func TestGaugeFuncReplacedAndLazy(t *testing.T) {
	r := NewRegistry()
	calls := 0
	r.GaugeFunc("lazy_value", "Lazy.", nil, func() float64 { calls++; return 1 })
	r.GaugeFunc("lazy_value", "Lazy.", nil, func() float64 { calls++; return 2 })
	if calls != 0 {
		t.Errorf("gauge callbacks ran at registration: %d calls", calls)
	}
	samples := render(t, r)
	if samples["lazy_value"] != 2 {
		t.Errorf("lazy_value = %v, want the replacement callback's 2", samples["lazy_value"])
	}
	if calls != 1 {
		t.Errorf("callback calls = %d, want 1 (replaced callback must not run)", calls)
	}
}

func TestHistogramSummaryExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("request_seconds", "Latency.", Labels{"path": "/predict"})
	for i := 0; i < 1000; i++ {
		h.Observe(0.010)
	}
	h.Observe(math.NaN()) // must be dropped, not poison the quantiles
	h.Observe(-1)
	if h.Count() != 1000 || h.Dropped() != 2 {
		t.Fatalf("count = %d dropped = %d", h.Count(), h.Dropped())
	}
	samples := render(t, r)
	q50, ok := samples[`request_seconds{path="/predict",quantile="0.5"}`]
	if !ok {
		t.Fatalf("no p50 sample in %v", samples)
	}
	// Quantiles are bucket upper bounds: within the 5% growth factor.
	if q50 < 0.010 || q50 > 0.0105*1.05 {
		t.Errorf("p50 = %v, want ~0.010", q50)
	}
	if n := samples[`request_seconds_count{path="/predict"}`]; n != 1000 {
		t.Errorf("count sample = %v, want 1000 (dropped values excluded)", n)
	}
	sum := samples[`request_seconds_sum{path="/predict"}`]
	if math.Abs(sum-h.Mean()*1000) > 1e-9 || !(sum > 0) {
		t.Errorf("sum sample = %v, want mean*count = %v", sum, h.Mean()*1000)
	}
}

func TestWritePrometheusParsesAndEscapes(t *testing.T) {
	r := NewRegistry()
	r.Counter("events_total", "Events with \\ and\nnewline help.", Labels{"kind": `quote " backslash \ newline` + "\n"}).Add(7)
	r.Gauge("temperature", "", nil).Set(-3.25)
	r.GaugeFunc("derived", "Scrape-time.", nil, func() float64 { return 42 })
	r.Histogram("lat_seconds", "Latency.", nil).Observe(0.5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	samples, err := promtest.Parse(text)
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, text)
	}
	found := false
	for key, v := range samples {
		if strings.HasPrefix(key, "events_total{") {
			found = true
			if v != 7 {
				t.Errorf("events_total = %v", v)
			}
			if !strings.Contains(key, `\"`) || !strings.Contains(key, `\\`) || !strings.Contains(key, `\n`) {
				t.Errorf("label value not escaped: %q", key)
			}
		}
	}
	if !found {
		t.Errorf("no events_total sample in:\n%s", text)
	}
	if samples["temperature"] != -3.25 || samples["derived"] != 42 {
		t.Errorf("gauge samples wrong: %v", samples)
	}
	if samples["lat_seconds_count"] != 1 {
		t.Errorf("summary count = %v", samples["lat_seconds_count"])
	}

	// Deterministic output: a second render must be byte-identical.
	var b2 strings.Builder
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != text {
		t.Error("two renders of an unchanged registry differ")
	}
}

func TestRuntimeMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	samples := render(t, r)
	if samples["go_goroutines"] < 1 {
		t.Errorf("go_goroutines = %v", samples["go_goroutines"])
	}
	if samples["go_mem_heap_alloc_bytes"] <= 0 {
		t.Errorf("go_mem_heap_alloc_bytes = %v", samples["go_mem_heap_alloc_bytes"])
	}
}

func TestConcurrentRegistrationAndWrite(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("shared_total", "Shared.", nil).Inc()
				r.Histogram("shared_seconds", "Shared.", Labels{"g": string(rune('a' + g%4))}).Observe(0.001)
				if i%50 == 0 {
					var b strings.Builder
					if err := r.WritePrometheus(&b); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("shared_total", "Shared.", nil).Value(); got != 8*200 {
		t.Errorf("shared_total = %d, want %d", got, 8*200)
	}
	if _, err := promtest.Parse(renderText(t, r)); err != nil {
		t.Errorf("post-race exposition does not parse: %v", err)
	}
}

func render(t *testing.T, r *Registry) map[string]float64 {
	t.Helper()
	samples, err := promtest.Parse(renderText(t, r))
	if err != nil {
		t.Fatal(err)
	}
	return samples
}

func renderText(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}
