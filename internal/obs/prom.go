package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the Content-Type of the Prometheus text exposition format
// rendered by WritePrometheus.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): one # HELP and # TYPE line per family,
// then one sample line per series. Families are emitted in name order so the
// output is deterministic and diffable; gauge callbacks are invoked at
// exposition time.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := append([]string(nil), r.names...)
	r.mu.RUnlock()
	sort.Strings(names)

	var b strings.Builder
	for _, name := range names {
		r.mu.RLock()
		f := r.families[name]
		keys := append([]string(nil), f.order...)
		metrics := make([]*metric, len(keys))
		for i, k := range keys {
			metrics[i] = f.metrics[k]
		}
		help, kind := f.help, f.kind
		r.mu.RUnlock()

		b.Reset()
		if help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", name, escapeHelp(help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, kind)
		for _, m := range metrics {
			writeMetric(&b, name, m, kind)
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

func writeMetric(b *strings.Builder, name string, m *metric, kind metricKind) {
	switch kind {
	case kindCounter:
		sample(b, name, m.labels, nil, formatUint(m.counter.Value()))
	case kindGauge:
		v := 0.0
		switch {
		case m.gaugeFn != nil:
			v = m.gaugeFn()
		case m.gauge != nil:
			v = m.gauge.Value()
		}
		sample(b, name, m.labels, nil, formatFloat(v))
	case kindSummary:
		// Snapshot once so the quantiles, sum and count are consistent.
		h := m.histogram
		snap := h.Snapshot()
		for _, q := range h.quantiles {
			v := 0.0
			if snap.Count() > 0 {
				v = snap.Quantile(q)
			}
			sample(b, name, m.labels, Labels{"quantile": formatFloat(q)}, formatFloat(v))
		}
		sample(b, name+"_sum", m.labels, nil, formatFloat(snap.Mean()*float64(snap.Count())))
		sample(b, name+"_count", m.labels, nil, formatUint(snap.Count()))
	}
}

// sample writes one exposition line: name{labels} value.
func sample(b *strings.Builder, name string, labels, extra Labels, value string) {
	b.WriteString(name)
	if len(labels)+len(extra) > 0 {
		b.WriteByte('{')
		first := true
		writeSet := func(l Labels) {
			keys := make([]string, 0, len(l))
			for k := range l {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				if !first {
					b.WriteByte(',')
				}
				first = false
				b.WriteString(k)
				b.WriteString(`="`)
				b.WriteString(escapeLabelValue(l[k]))
				b.WriteByte('"')
			}
		}
		writeSet(labels)
		writeSet(extra)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

// escapeHelp escapes a HELP string per the text format: backslash and
// newline (double quotes are legal there).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func formatUint(v uint64) string {
	return strconv.FormatUint(v, 10)
}
