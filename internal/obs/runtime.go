package obs

import (
	"runtime"
	"sync"
	"time"
)

// memStatsCacheTTL bounds how often a scrape may trigger a fresh
// runtime.ReadMemStats: the call briefly stops the world, so back-to-back
// gauge evaluations within one exposition (or an aggressive scraper) share
// one snapshot instead of paying it per gauge.
const memStatsCacheTTL = time.Second

// RegisterRuntimeMetrics registers process-level runtime gauges on r:
// goroutine count, heap usage and garbage-collection activity. All values
// are collected lazily at exposition time; the MemStats snapshot behind the
// memory and GC gauges is cached for memStatsCacheTTL.
func RegisterRuntimeMetrics(r *Registry) {
	var (
		mu   sync.Mutex
		ms   runtime.MemStats
		last time.Time
	)
	mem := func(f func(*runtime.MemStats) float64) func() float64 {
		return func() float64 {
			mu.Lock()
			defer mu.Unlock()
			if now := time.Now(); now.Sub(last) > memStatsCacheTTL {
				runtime.ReadMemStats(&ms)
				last = now
			}
			return f(&ms)
		}
	}
	r.GaugeFunc("go_goroutines", "Number of goroutines that currently exist.", nil,
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("go_mem_heap_alloc_bytes", "Bytes of allocated heap objects.", nil,
		mem(func(m *runtime.MemStats) float64 { return float64(m.HeapAlloc) }))
	r.GaugeFunc("go_mem_heap_objects", "Number of allocated heap objects.", nil,
		mem(func(m *runtime.MemStats) float64 { return float64(m.HeapObjects) }))
	r.GaugeFunc("go_mem_heap_sys_bytes", "Bytes of heap memory obtained from the OS.", nil,
		mem(func(m *runtime.MemStats) float64 { return float64(m.HeapSys) }))
	r.GaugeFunc("go_gc_cycles_total", "Completed garbage-collection cycles.", nil,
		mem(func(m *runtime.MemStats) float64 { return float64(m.NumGC) }))
	r.GaugeFunc("go_gc_pause_total_seconds", "Cumulative stop-the-world GC pause time.", nil,
		mem(func(m *runtime.MemStats) float64 { return float64(m.PauseTotalNs) / 1e9 }))
	r.GaugeFunc("go_gc_pause_last_seconds", "Duration of the most recent GC pause.", nil,
		mem(func(m *runtime.MemStats) float64 {
			if m.NumGC == 0 {
				return 0
			}
			return float64(m.PauseNs[(m.NumGC+255)%256]) / 1e9
		}))
}
