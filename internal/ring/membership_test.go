package ring

import (
	"testing"
)

// movedAssignments counts (partition, rank) slots whose device differs
// between two same-shape rings.
func movedAssignments(t *testing.T, a, b *Ring) int {
	t.Helper()
	if a.Partitions() != b.Partitions() || a.Replicas() != b.Replicas() {
		t.Fatalf("ring shapes differ: %dx%d vs %dx%d",
			a.Partitions(), a.Replicas(), b.Partitions(), b.Replicas())
	}
	moved := 0
	for p := 0; p < a.Partitions(); p++ {
		da, db := a.ReplicasOf(p), b.ReplicasOf(p)
		for i := range da {
			if da[i] != db[i] {
				moved++
			}
		}
	}
	return moved
}

// checkDistinctReplicas asserts every partition still holds its replicas on
// distinct, in-range devices.
func checkDistinctReplicas(t *testing.T, r *Ring) {
	t.Helper()
	for p := 0; p < r.Partitions(); p++ {
		seen := map[int32]bool{}
		for _, d := range r.ReplicasOf(p) {
			if d < 0 || int(d) >= r.Devices() {
				t.Fatalf("partition %d: device %d out of range", p, d)
			}
			if seen[d] {
				t.Fatalf("partition %d: duplicate device %d after membership change", p, d)
			}
			seen[d] = true
		}
	}
}

// TestAddDeviceRemapsExpectedFraction is the consistent-hashing membership
// property: growing an n-device ring to n+1 moves only the new device's
// balanced share — ≈ 1/(n+1) of all assignments — and nothing else.
func TestAddDeviceRemapsExpectedFraction(t *testing.T) {
	const parts, reps, devs = 1024, 3, 6
	r, err := New(parts, reps, devs, 42)
	if err != nil {
		t.Fatal(err)
	}
	grown := r.AddDevice(7)
	if grown.Devices() != devs+1 {
		t.Fatalf("Devices() = %d, want %d", grown.Devices(), devs+1)
	}
	checkDistinctReplicas(t, grown)

	total := parts * reps
	target := total / (devs + 1)
	moved := movedAssignments(t, r, grown)
	if moved != target {
		t.Errorf("membership change moved %d assignments, want exactly the new share %d", moved, target)
	}
	// Every move must land on the new device: nothing shuffles between the
	// existing members.
	counts := grown.DevicePartitionCounts()
	if counts[devs] != moved {
		t.Errorf("new device holds %d assignments but %d moved", counts[devs], moved)
	}
	// The donor loads stay balanced: no old device deviates far from ideal.
	for d := 0; d < devs; d++ {
		if counts[d] < target*9/10 || counts[d] > total/devs {
			t.Errorf("device %d holds %d after grow, want within [%d,%d]",
				d, counts[d], target*9/10, total/devs)
		}
	}
	// The original ring is untouched (membership changes never mutate).
	if got := r.Devices(); got != devs {
		t.Errorf("original ring mutated: Devices() = %d", got)
	}
	if c := r.DevicePartitionCounts(); len(c) != devs {
		t.Errorf("original ring count width %d", len(c))
	}
}

// TestDrainDeviceRemapsExpectedFraction: draining one of n devices moves
// exactly that device's ≈ 1/n share and leaves every other assignment alone.
func TestDrainDeviceRemapsExpectedFraction(t *testing.T) {
	const parts, reps, devs = 1024, 3, 6
	r, err := New(parts, reps, devs, 42)
	if err != nil {
		t.Fatal(err)
	}
	const victim = 2
	before := r.DevicePartitionCounts()
	drained, err := r.DrainDevice(victim)
	if err != nil {
		t.Fatal(err)
	}
	checkDistinctReplicas(t, drained)

	moved := movedAssignments(t, r, drained)
	if moved != before[victim] {
		t.Errorf("drain moved %d assignments, want exactly the victim's %d", moved, before[victim])
	}
	counts := drained.DevicePartitionCounts()
	if counts[victim] != 0 {
		t.Errorf("drained device still holds %d assignments", counts[victim])
	}
	// The victim's load spreads: remaining devices stay within one part of
	// each other around the new ideal.
	ideal := parts * reps / (devs - 1)
	for d := 0; d < devs; d++ {
		if d == victim {
			continue
		}
		if counts[d] < ideal*9/10 || counts[d] > ideal*11/10 {
			t.Errorf("device %d holds %d after drain, ideal %d", d, counts[d], ideal)
		}
	}
}

// TestMembershipChangeDeterministicUnderSeed: the same seed produces the
// identical post-change assignment, so independent routers computing the
// same membership transition agree without coordination.
func TestMembershipChangeDeterministicUnderSeed(t *testing.T) {
	r, err := New(256, 2, 5, 11)
	if err != nil {
		t.Fatal(err)
	}
	a, b := r.AddDevice(99), r.AddDevice(99)
	if moved := movedAssignments(t, a, b); moved != 0 {
		t.Errorf("same-seed grows differ in %d assignments", moved)
	}
	c := r.AddDevice(100)
	if moved := movedAssignments(t, a, c); moved == 0 {
		t.Error("different seeds produced identical steal order; expected different spreads")
	}
	d1, err := r.DrainDevice(3)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := r.DrainDevice(3)
	if err != nil {
		t.Fatal(err)
	}
	if moved := movedAssignments(t, d1, d2); moved != 0 {
		t.Errorf("repeated drains differ in %d assignments", moved)
	}
}

// TestDrainDeviceValidation: bad ids and too-few remaining devices fail.
func TestDrainDeviceValidation(t *testing.T) {
	r, err := New(64, 3, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.DrainDevice(-1); err == nil {
		t.Error("negative device drained")
	}
	if _, err := r.DrainDevice(4); err == nil {
		t.Error("out-of-range device drained")
	}
	// 4 devices, 3 replicas: draining leaves 3 = replicas, still legal.
	if _, err := r.DrainDevice(0); err != nil {
		t.Errorf("drain to exactly replicas devices: %v", err)
	}
	// 3 devices, 3 replicas: draining would leave too few.
	tight, err := New(64, 3, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tight.DrainDevice(0); err == nil {
		t.Error("drain below replica count succeeded")
	}
}

// TestGrowThenDrainRoundTrip: growing and then draining the new device
// restores a ring with the original member loads (assignments may sit on
// different partitions, but the membership invariants all hold).
func TestGrowThenDrainRoundTrip(t *testing.T) {
	r, err := New(512, 2, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	grown := r.AddDevice(6)
	back, err := grown.DrainDevice(4)
	if err != nil {
		t.Fatal(err)
	}
	checkDistinctReplicas(t, back)
	counts := back.DevicePartitionCounts()
	if counts[4] != 0 {
		t.Errorf("drained new device still holds %d", counts[4])
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 512*2 {
		t.Errorf("assignments leaked: total %d, want %d", total, 512*2)
	}
}
