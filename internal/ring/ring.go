// Package ring implements a Swift-style consistent-hash ring: object names
// hash (MD5, as in OpenStack Swift) to one of a power-of-two number of
// partitions, and each partition is assigned a fixed number of replicas on
// distinct devices, balanced as evenly as possible.
package ring

import (
	"crypto/md5"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
)

// ErrBadConfig reports invalid ring construction parameters.
var ErrBadConfig = errors.New("ring: partitions must be a power of two >= 1, replicas >= 1, devices >= replicas")

// Ring maps object names to replica device sets.
type Ring struct {
	partPower  uint // partitions = 1 << partPower
	partitions int
	replicas   int
	devices    int
	assign     [][]int32 // partition -> replica device ids
}

// New builds a ring with the given number of partitions (a power of two),
// replicas per partition, and devices. Replicas of one partition always land
// on distinct devices, which requires devices >= replicas. Assignment is
// deterministic for a given seed and balanced: device partition counts
// differ by at most one per replica rank.
func New(partitions, replicas, devices int, seed int64) (*Ring, error) {
	if partitions < 1 || partitions&(partitions-1) != 0 ||
		replicas < 1 || devices < replicas {
		return nil, fmt.Errorf("%w: partitions=%d replicas=%d devices=%d",
			ErrBadConfig, partitions, replicas, devices)
	}
	power := uint(0)
	for 1<<power < partitions {
		power++
	}
	r := &Ring{
		partPower:  power,
		partitions: partitions,
		replicas:   replicas,
		devices:    devices,
		assign:     make([][]int32, partitions),
	}
	rng := rand.New(rand.NewSource(seed))
	// Per-replica-rank round-robin over a shuffled device order, with a
	// rotation per rank so ranks don't correlate; collisions within a
	// partition are resolved by skipping to the next unused device.
	order := rng.Perm(devices)
	for p := 0; p < partitions; p++ {
		r.assign[p] = make([]int32, replicas)
		used := make(map[int32]bool, replicas)
		for rep := 0; rep < replicas; rep++ {
			idx := (p + rep*(devices/replicas+1)) % devices
			for tries := 0; tries < devices; tries++ {
				dev := int32(order[(idx+tries)%devices])
				if !used[dev] {
					used[dev] = true
					r.assign[p][rep] = dev
					break
				}
			}
		}
	}
	return r, nil
}

// Partitions returns the number of partitions.
func (r *Ring) Partitions() int { return r.partitions }

// Replicas returns the replica count.
func (r *Ring) Replicas() int { return r.replicas }

// Devices returns the device count.
func (r *Ring) Devices() int { return r.devices }

// PartitionOf hashes an object name to its partition (top partPower bits of
// the MD5 digest, as Swift does).
func (r *Ring) PartitionOf(object string) int {
	sum := md5.Sum([]byte(object))
	top := binary.BigEndian.Uint32(sum[:4])
	return int(top >> (32 - r.partPower))
}

// PartitionOfID hashes a numeric object ID (the trace toolkit identifies
// objects by uint64) to its partition.
func (r *Ring) PartitionOfID(id uint64) int {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], id)
	sum := md5.Sum(buf[:])
	top := binary.BigEndian.Uint32(sum[:4])
	return int(top >> (32 - r.partPower))
}

// ReplicasOf returns the device ids holding the partition's replicas.
// The returned slice is owned by the ring; do not modify it.
func (r *Ring) ReplicasOf(partition int) []int32 {
	return r.assign[partition]
}

// PickReplica returns one of the partition's replica devices uniformly at
// random — OpenStack Swift's proxy picks a replica with randomness, which
// the paper notes as the source of run-to-run variation.
func (r *Ring) PickReplica(partition int, rng *rand.Rand) int32 {
	devs := r.assign[partition]
	return devs[rng.Intn(len(devs))]
}

// DevicePartitionCounts returns, for each device, how many (partition,
// replica) assignments it holds. Useful for balance checks and capacity
// planning.
func (r *Ring) DevicePartitionCounts() []int {
	counts := make([]int, r.devices)
	for _, devs := range r.assign {
		for _, d := range devs {
			counts[d]++
		}
	}
	return counts
}
