// Package ring implements a Swift-style consistent-hash ring: object names
// hash (MD5, as in OpenStack Swift) to one of a power-of-two number of
// partitions, and each partition is assigned a fixed number of replicas on
// distinct devices, balanced as evenly as possible.
package ring

import (
	"crypto/md5"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
)

// ErrBadConfig reports invalid ring construction parameters.
var ErrBadConfig = errors.New("ring: partitions must be a power of two >= 1, replicas >= 1, devices >= replicas")

// Ring maps object names to replica device sets.
type Ring struct {
	partPower  uint // partitions = 1 << partPower
	partitions int
	replicas   int
	devices    int
	assign     [][]int32 // partition -> replica device ids
}

// New builds a ring with the given number of partitions (a power of two),
// replicas per partition, and devices. Replicas of one partition always land
// on distinct devices, which requires devices >= replicas. Assignment is
// deterministic for a given seed and balanced: device partition counts
// differ by at most one per replica rank.
func New(partitions, replicas, devices int, seed int64) (*Ring, error) {
	if partitions < 1 || partitions&(partitions-1) != 0 ||
		replicas < 1 || devices < replicas {
		return nil, fmt.Errorf("%w: partitions=%d replicas=%d devices=%d",
			ErrBadConfig, partitions, replicas, devices)
	}
	power := uint(0)
	for 1<<power < partitions {
		power++
	}
	r := &Ring{
		partPower:  power,
		partitions: partitions,
		replicas:   replicas,
		devices:    devices,
		assign:     make([][]int32, partitions),
	}
	rng := rand.New(rand.NewSource(seed))
	// Per-replica-rank round-robin over a shuffled device order, with a
	// rotation per rank so ranks don't correlate; collisions within a
	// partition are resolved by skipping to the next unused device.
	order := rng.Perm(devices)
	for p := 0; p < partitions; p++ {
		r.assign[p] = make([]int32, replicas)
		used := make(map[int32]bool, replicas)
		for rep := 0; rep < replicas; rep++ {
			idx := (p + rep*(devices/replicas+1)) % devices
			for tries := 0; tries < devices; tries++ {
				dev := int32(order[(idx+tries)%devices])
				if !used[dev] {
					used[dev] = true
					r.assign[p][rep] = dev
					break
				}
			}
		}
	}
	return r, nil
}

// Partitions returns the number of partitions.
func (r *Ring) Partitions() int { return r.partitions }

// Replicas returns the replica count.
func (r *Ring) Replicas() int { return r.replicas }

// Devices returns the device count.
func (r *Ring) Devices() int { return r.devices }

// PartitionOf hashes an object name to its partition (top partPower bits of
// the MD5 digest, as Swift does).
func (r *Ring) PartitionOf(object string) int {
	sum := md5.Sum([]byte(object))
	top := binary.BigEndian.Uint32(sum[:4])
	return int(top >> (32 - r.partPower))
}

// PartitionOfID hashes a numeric object ID (the trace toolkit identifies
// objects by uint64) to its partition.
func (r *Ring) PartitionOfID(id uint64) int {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], id)
	sum := md5.Sum(buf[:])
	top := binary.BigEndian.Uint32(sum[:4])
	return int(top >> (32 - r.partPower))
}

// ReplicasOf returns the device ids holding the partition's replicas.
// The returned slice is owned by the ring; do not modify it.
func (r *Ring) ReplicasOf(partition int) []int32 {
	return r.assign[partition]
}

// PickReplica returns one of the partition's replica devices uniformly at
// random — OpenStack Swift's proxy picks a replica with randomness, which
// the paper notes as the source of run-to-run variation.
func (r *Ring) PickReplica(partition int, rng *rand.Rand) int32 {
	devs := r.assign[partition]
	return devs[rng.Intn(len(devs))]
}

// DevicePartitionCounts returns, for each device, how many (partition,
// replica) assignments it holds. Useful for balance checks and capacity
// planning.
func (r *Ring) DevicePartitionCounts() []int {
	counts := make([]int, r.devices)
	for _, devs := range r.assign {
		for _, d := range devs {
			counts[d]++
		}
	}
	return counts
}

// clone deep-copies the ring so membership changes never mutate the
// original: callers holding the old ring keep a consistent view (the
// cluster router swaps rings atomically).
func (r *Ring) clone() *Ring {
	nr := &Ring{
		partPower:  r.partPower,
		partitions: r.partitions,
		replicas:   r.replicas,
		devices:    r.devices,
		assign:     make([][]int32, r.partitions),
	}
	for p, devs := range r.assign {
		nr.assign[p] = append([]int32(nil), devs...)
	}
	return nr
}

// hasDevice reports whether partition p already holds a replica on dev.
func (r *Ring) hasDevice(p int, dev int32) bool {
	for _, d := range r.assign[p] {
		if d == dev {
			return true
		}
	}
	return false
}

// AddDevice returns a new ring with one more device, moving only the
// minimum number of (partition, replica) assignments needed to give the new
// device its balanced share — the consistent-hashing membership-change
// property: growing an n-device ring to n+1 remaps ≈ 1/(n+1) of the
// assignments and leaves everything else where it was. Object-to-partition
// hashing is untouched. The steal order is deterministic for a given seed.
func (r *Ring) AddDevice(seed int64) *Ring {
	nr := r.clone()
	newDev := int32(nr.devices)
	nr.devices++
	counts := nr.DevicePartitionCounts()
	counts = append(counts, 0)
	total := nr.partitions * nr.replicas
	target := total / nr.devices

	// Per-device assignment lists in a seeded random partition order, so
	// repeated grows spread steals across the partition space instead of
	// always raiding the low partitions.
	rng := rand.New(rand.NewSource(seed))
	order := rng.Perm(nr.partitions)
	owned := make([][][2]int32, nr.devices) // device -> [(partition, rank)]
	for _, p := range order {
		for rank, d := range nr.assign[p] {
			owned[d] = append(owned[d], [2]int32{int32(p), int32(rank)})
		}
	}
	for counts[newDev] < target {
		// Steal from the currently most-loaded device (ties: lowest id),
		// taking its next listed partition the new device is not already in.
		victim := int32(0)
		for d := 1; d < int(newDev); d++ {
			if counts[d] > counts[victim] {
				victim = int32(d)
			}
		}
		moved := false
		for i, pr := range owned[victim] {
			p, rank := int(pr[0]), int(pr[1])
			if nr.assign[p][rank] != victim || nr.hasDevice(p, newDev) {
				continue
			}
			nr.assign[p][rank] = newDev
			counts[victim]--
			counts[newDev]++
			owned[victim] = owned[victim][i+1:]
			moved = true
			break
		}
		if !moved {
			// The most-loaded device has no stealable partition left
			// (every remaining one already hosts the new device); the ring
			// is as balanced as membership allows.
			break
		}
	}
	return nr
}

// DrainDevice returns a new ring in which dev holds no assignments: every
// (partition, replica) it held is reassigned to the least-loaded remaining
// device not already hosting that partition, and nothing else moves. The
// device count is unchanged — the id stays valid but empty, which is the
// failover/decommission shape the cluster tier needs (remaining ids keep
// their meaning). Draining remaps exactly the drained device's share,
// ≈ 1/n of the assignments. Requires at least replicas+1 devices so every
// partition can still place distinct replicas.
func (r *Ring) DrainDevice(dev int) (*Ring, error) {
	if dev < 0 || dev >= r.devices {
		return nil, fmt.Errorf("%w: device %d outside [0,%d)", ErrBadConfig, dev, r.devices)
	}
	if r.devices-1 < r.replicas {
		return nil, fmt.Errorf("%w: draining device %d leaves %d devices for %d replicas",
			ErrBadConfig, dev, r.devices-1, r.replicas)
	}
	nr := r.clone()
	counts := nr.DevicePartitionCounts()
	for p := 0; p < nr.partitions; p++ {
		for rank, d := range nr.assign[p] {
			if int(d) != dev {
				continue
			}
			// Least-loaded eligible replacement, ties to the lowest id:
			// deterministic without a seed.
			best := int32(-1)
			for c := 0; c < nr.devices; c++ {
				if c == dev || nr.hasDevice(p, int32(c)) {
					continue
				}
				if best < 0 || counts[c] < counts[best] {
					best = int32(c)
				}
			}
			if best < 0 {
				return nil, fmt.Errorf("%w: no replacement device for partition %d", ErrBadConfig, p)
			}
			nr.assign[p][rank] = best
			counts[dev]--
			counts[best]++
		}
	}
	return nr, nil
}
