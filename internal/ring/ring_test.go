package ring

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	cases := []struct{ parts, reps, devs int }{
		{0, 3, 4},   // no partitions
		{100, 3, 4}, // not a power of two
		{128, 0, 4}, // no replicas
		{128, 3, 2}, // fewer devices than replicas
	}
	for _, c := range cases {
		if _, err := New(c.parts, c.reps, c.devs, 1); err == nil {
			t.Errorf("New(%d,%d,%d) should fail", c.parts, c.reps, c.devs)
		}
	}
	if _, err := New(1024, 3, 4, 1); err != nil {
		t.Errorf("valid config failed: %v", err)
	}
}

func TestReplicasAreDistinctDevices(t *testing.T) {
	r, err := New(1024, 3, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < r.Partitions(); p++ {
		devs := r.ReplicasOf(p)
		if len(devs) != 3 {
			t.Fatalf("partition %d has %d replicas", p, len(devs))
		}
		seen := map[int32]bool{}
		for _, d := range devs {
			if d < 0 || int(d) >= r.Devices() {
				t.Fatalf("partition %d: device %d out of range", p, d)
			}
			if seen[d] {
				t.Fatalf("partition %d: duplicate device %d", p, d)
			}
			seen[d] = true
		}
	}
}

func TestBalancedAssignment(t *testing.T) {
	// The paper's testbed: 1024 partitions, 3 replicas, 4 disks — Swift
	// distributes all replicas evenly among the disks.
	r, err := New(1024, 3, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	counts := r.DevicePartitionCounts()
	total := 0
	ideal := 1024 * 3 / 4
	for dev, c := range counts {
		total += c
		if c < ideal*9/10 || c > ideal*11/10 {
			t.Errorf("device %d holds %d assignments, ideal %d", dev, c, ideal)
		}
	}
	if total != 1024*3 {
		t.Errorf("total assignments = %d", total)
	}
}

func TestPartitionOfIsDeterministicAndInRange(t *testing.T) {
	r, _ := New(256, 2, 5, 3)
	for i := 0; i < 1000; i++ {
		name := fmt.Sprintf("object-%d", i)
		p := r.PartitionOf(name)
		if p != r.PartitionOf(name) {
			t.Fatal("PartitionOf not deterministic")
		}
		if p < 0 || p >= 256 {
			t.Fatalf("partition %d out of range", p)
		}
	}
}

func TestPartitionOfIDUniformity(t *testing.T) {
	r, _ := New(64, 1, 2, 1)
	counts := make([]int, 64)
	const n = 64000
	for i := 0; i < n; i++ {
		counts[r.PartitionOfID(uint64(i))]++
	}
	// Each partition should get about n/64 = 1000 objects.
	for p, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("partition %d got %d objects, want ~1000", p, c)
		}
	}
}

func TestPickReplicaCoversAllReplicas(t *testing.T) {
	r, _ := New(16, 3, 6, 9)
	rng := rand.New(rand.NewSource(2))
	seen := map[int32]int{}
	for i := 0; i < 3000; i++ {
		seen[r.PickReplica(5, rng)]++
	}
	devs := r.ReplicasOf(5)
	if len(seen) != len(devs) {
		t.Errorf("replica choice visited %d devices, want %d", len(seen), len(devs))
	}
	for d, c := range seen {
		if c < 800 || c > 1200 {
			t.Errorf("device %d picked %d times, want ~1000", d, c)
		}
	}
}

func TestSameSeedSameRing(t *testing.T) {
	a, _ := New(128, 3, 7, 1234)
	b, _ := New(128, 3, 7, 1234)
	for p := 0; p < 128; p++ {
		da, db := a.ReplicasOf(p), b.ReplicasOf(p)
		for i := range da {
			if da[i] != db[i] {
				t.Fatalf("partition %d differs between same-seed rings", p)
			}
		}
	}
}

// TestRingProperty: any valid configuration yields full coverage with
// distinct replica devices per partition.
func TestRingProperty(t *testing.T) {
	f := func(rawParts uint8, rawReps, rawDevs uint8, seed int64) bool {
		partPow := int(rawParts%8) + 1 // 2..256 partitions
		parts := 1 << partPow
		reps := int(rawReps%3) + 1
		devs := reps + int(rawDevs%8)
		r, err := New(parts, reps, devs, seed)
		if err != nil {
			return false
		}
		for p := 0; p < parts; p++ {
			seen := map[int32]bool{}
			for _, d := range r.ReplicasOf(p) {
				if d < 0 || int(d) >= devs || seen[d] {
					return false
				}
				seen[d] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPartitionLookup(b *testing.B) {
	r, _ := New(1024, 3, 4, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.PartitionOfID(uint64(i))
	}
}
